//! The session-based synthesis API: observable, cancellable, incremental
//! runs over one long-lived membership-query cache.
//!
//! [`Glade::synthesize`](crate::Glade::synthesize) modelled synthesis as a
//! single blocking call; production use wants more control. A [`Session`]
//! ties one oracle to one persistent query cache and supports:
//!
//! * **Incremental synthesis** — [`Session::add_seeds`] extends the
//!   current grammar with new seeds without re-deriving the trees of
//!   earlier seeds (the paper's Section 6.1 loop, made resumable). The
//!   result is byte-identical to a fresh run on the combined seed set.
//! * **Observation** — a [`SynthesisObserver`] receives structured
//!   [`SynthEvent`](crate::SynthEvent)s for phase boundaries, per-seed
//!   decisions, accepted merges, and query batches.
//! * **Cancellation** — a [`CancelToken`] stops a runaway run between
//!   query batches; the degraded result still contains every seed.
//! * **Persistence** — [`Session::save_cache`]/[`Session::load_cache`]
//!   snapshot the query cache (see `persist.rs`), so multi-target
//!   campaigns and repeated eval/bench runs stop re-paying oracle calls.
//!
//! Sessions are configured through the fluent [`GladeBuilder`]:
//!
//! ```
//! use glade_core::{FnOracle, GladeBuilder};
//!
//! let oracle = FnOracle::new(glade_core::testing::xml_like);
//! let mut session = GladeBuilder::new().max_queries(50_000).session(&oracle);
//! let first = session.add_seeds(&[b"<a>hi</a>".to_vec()])?;
//! assert!(first.stats.merges_accepted >= 1);
//!
//! // Later seeds extend the same grammar; prior trees are not re-derived
//! // and prior queries are answered from the session cache.
//! let second = session.add_seeds(&[b"<a><a>x</a></a>".to_vec()])?;
//! assert!(second.stats.unique_queries >= first.stats.unique_queries);
//! # Ok::<(), glade_core::SynthesisError>(())
//! ```

use crate::cache::ShardedCache;
use crate::chargen::{apply_char_probes, apply_staged_classes, plan_char_probes, StagedChargen};
use crate::events::{CancelToken, SynthEvent, SynthPhase, SynthesisObserver};
use crate::memo::ByteClassMemo;
use crate::persist::{
    is_binary_snapshot, snapshot_from_binary_reader, snapshot_from_reader, snapshot_from_text,
    snapshot_to_binary, snapshot_to_text_with_memo, BinaryCacheFile, CacheError, CacheFormat,
    CacheSnapshot, MemoEntry,
};
use crate::phase1::Phase1;
use crate::phase2::{apply_merge_verdicts, plan_merge_checks, StagedMerge};
use crate::runner::{BackingStore, CheckSpec, QueryRunner, RunnerOptions};
use crate::synth::{Glade, GladeConfig, Synthesis, SynthesisError, SynthesisStats};
use crate::tree::{trees_to_grammar, Node, UnionFind};
use crate::Oracle;
use glade_grammar::Regex;
use std::io::BufRead;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Fluent configuration for the session API.
///
/// Replaces struct-literal [`GladeConfig`] construction: each method sets
/// one knob and returns the builder, and [`GladeBuilder::session`] opens a
/// [`Session`] against an oracle. [`GladeBuilder::synthesize`] is the
/// one-shot convenience for callers that need a single blocking run.
///
/// # Examples
///
/// ```
/// use glade_core::{FnOracle, GladeBuilder};
///
/// let oracle = FnOracle::new(glade_core::testing::xml_like);
/// let result = GladeBuilder::new()
///     .max_queries(100_000)
///     .worker_threads(2)
///     .synthesize(&[b"<a>hi</a>".to_vec()], &oracle)?;
/// assert!(result.stats.unique_queries > 0);
/// # Ok::<(), glade_core::SynthesisError>(())
/// ```
#[derive(Clone, Default)]
pub struct GladeBuilder {
    config: GladeConfig,
    observer: Option<Arc<dyn SynthesisObserver>>,
    /// `None` until [`GladeBuilder::cancel_token`] installs one: each
    /// session then gets its own fresh token, so cancelling one session
    /// built from a cloned builder cannot silently degrade the others.
    cancel: Option<CancelToken>,
    /// Oracle identity written into (and checked against) persisted cache
    /// snapshots; see [`GladeBuilder::oracle_fingerprint`].
    fingerprint: Option<String>,
    /// Resident-entry cap for the session cache; see
    /// [`GladeBuilder::max_cache_entries`].
    max_cache_entries: Option<usize>,
}

impl std::fmt::Debug for GladeBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GladeBuilder")
            .field("config", &self.config)
            .field("observer", &self.observer.as_ref().map(|_| "dyn SynthesisObserver"))
            .field("cancel", &self.cancel)
            .field("fingerprint", &self.fingerprint)
            .field("max_cache_entries", &self.max_cache_entries)
            .finish()
    }
}

impl GladeBuilder {
    /// Starts from the default configuration (full pipeline, unlimited
    /// budget, automatic worker count).
    pub fn new() -> Self {
        GladeBuilder::default()
    }

    /// Starts from an existing [`GladeConfig`] (migration aid for callers
    /// that already assemble configs programmatically).
    pub fn from_config(config: GladeConfig) -> Self {
        GladeBuilder { config, ..GladeBuilder::default() }
    }

    /// Enables or disables the merge phase (Section 5). Disabling yields
    /// the paper's `P1` ablation.
    pub fn phase2(mut self, enabled: bool) -> Self {
        self.config.phase2 = enabled;
        self
    }

    /// Enables or disables character generalization (Section 6.2).
    pub fn character_generalization(mut self, enabled: bool) -> Self {
        self.config.character_generalization = enabled;
        self
    }

    /// Sets the candidate bytes tried during character generalization.
    pub fn char_test_bytes(mut self, bytes: Vec<u8>) -> Self {
        self.config.char_test_bytes = bytes;
        self
    }

    /// Enables or disables the query-reduction layer (byte-class
    /// memoization, context short-circuiting, in-wave check dedup, and
    /// merge-check pruning — see the `chargen.rs` module docs). On by
    /// default; every elision is exact, so the synthesized grammar is
    /// byte-identical either way — only the query counts change. Disable
    /// for A/B measurement (`glade synth --no-memo`) or to reproduce the
    /// historical one-shot query counts.
    pub fn memoize_byte_classes(mut self, enabled: bool) -> Self {
        self.config.memoize_byte_classes = enabled;
        self
    }

    /// Caps the *distinct* oracle queries per run; past the cap the run
    /// degrades gracefully (stops generalizing further).
    pub fn max_queries(mut self, limit: usize) -> Self {
        self.config.max_queries = Some(limit);
        self
    }

    /// Sets a wall-clock limit per run, emulating the paper's 300 s
    /// timeout.
    pub fn time_limit(mut self, limit: Duration) -> Self {
        self.config.time_limit = Some(limit);
        self
    }

    /// Bounds every oracle query with a per-query deadline (see
    /// [`GladeConfig::oracle_timeout`](crate::GladeConfig::oracle_timeout)):
    /// a worker that accepts a query but never answers within `limit` is
    /// killed, the query is retried or counted as a failure, and synthesis
    /// keeps moving — a hung parser binary can cost queries, never the
    /// run. In-process oracles ignore it. Affects liveness only, never
    /// verdicts.
    pub fn oracle_timeout(mut self, limit: Duration) -> Self {
        self.config.oracle_timeout = Some(limit);
        self
    }

    /// Enables or disables the Section 6.1 redundant-seed skip.
    pub fn skip_redundant_seeds(mut self, enabled: bool) -> Self {
        self.config.skip_redundant_seeds = enabled;
        self
    }

    /// Sets the worker-thread count for batched membership checks
    /// (`1` forces the fully sequential path; the default uses the
    /// machine's available parallelism).
    ///
    /// Oracles that batch natively (see
    /// [`Oracle::native_batching`](crate::Oracle::native_batching), e.g.
    /// [`PooledProcessOracle`](crate::PooledProcessOracle)) are handed
    /// whole miss sets from the calling thread instead — their own pool
    /// size, not this knob, governs their parallelism. Either way the
    /// synthesized grammar and the query counts are identical.
    pub fn worker_threads(mut self, workers: usize) -> Self {
        self.config.worker_threads = Some(workers);
        self
    }

    /// Installs a progress observer (see [`SynthEvent`](crate::SynthEvent)
    /// for the event vocabulary). Pass an `Arc` to keep a handle for
    /// inspection after the run.
    pub fn observer(mut self, observer: impl SynthesisObserver + 'static) -> Self {
        self.observer = Some(Arc::new(observer));
        self
    }

    /// Installs an observer the caller already holds as a shared
    /// `Arc<dyn SynthesisObserver>`.
    ///
    /// [`observer`](GladeBuilder::observer) wraps its argument in a fresh
    /// `Arc`, so passing it an `Arc<dyn SynthesisObserver>` would nest the
    /// handle rather than share the instance. This variant installs the
    /// given `Arc` directly — the session and the caller (e.g. a serving
    /// dispatcher draining events concurrently; see the threading contract
    /// on [`SynthesisObserver`]) observe the same object.
    pub fn observer_shared(mut self, observer: Arc<dyn SynthesisObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Installs an external cancellation token; keep a clone and call
    /// [`CancelToken::cancel`] to stop runs early. Without this, every
    /// session built from this builder (or a clone of it) gets its own
    /// fresh token, reachable via [`Session::cancel_token`]; an installed
    /// token, by contrast, is deliberately shared — cancelling it stops
    /// every session it was installed into.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Declares the identity of the oracle this session will query, for
    /// persisted cache snapshots. Cached verdicts are facts about one
    /// target: with a fingerprint installed, [`Session::save_cache`] tags
    /// snapshots with it (`glade-cache v2`) and [`Session::load_cache`]
    /// **rejects** snapshots tagged with a different fingerprint
    /// ([`CacheError::OracleMismatch`]) instead of silently replaying stale
    /// verdicts. Untagged (v1) snapshots still load.
    ///
    /// Use [`ProcessOracle::fingerprint`](crate::ProcessOracle::fingerprint)
    /// / [`PooledProcessOracle::fingerprint`](crate::PooledProcessOracle::fingerprint)
    /// for process oracles, or any stable string (e.g. a target name) for
    /// in-process oracles.
    pub fn oracle_fingerprint(mut self, fingerprint: impl Into<String>) -> Self {
        self.fingerprint = Some(fingerprint.into());
        self
    }

    /// Caps the session cache's *resident* entries at roughly `limit`,
    /// evicting with a second-chance sweep once a shard fills (see the
    /// `persist.rs` ops note for sizing guidance). For long-lived serve
    /// campaigns whose cache would otherwise grow without bound: eviction
    /// may make the session re-pay an oracle query it once knew, but the
    /// oracle is deterministic, so verdicts — and grammar bytes — never
    /// change, and `unique_queries` accounting stays exact (distinct keys
    /// are counted by a ledger that survives eviction). Unbounded by
    /// default.
    pub fn max_cache_entries(mut self, limit: usize) -> Self {
        self.max_cache_entries = Some(limit);
        self
    }

    /// The configuration assembled so far.
    pub fn config(&self) -> &GladeConfig {
        &self.config
    }

    /// Opens a session against `oracle`. The session owns the query cache;
    /// every run through it shares (and extends) that cache.
    pub fn session<'o>(self, oracle: &'o dyn Oracle) -> Session<'o> {
        Session {
            config: self.config,
            oracle,
            observer: self.observer,
            cancel: self.cancel.unwrap_or_default(),
            fingerprint: self.fingerprint,
            cache: ShardedCache::with_max_entries(self.max_cache_entries),
            backing: None,
            memo: Mutex::new(ByteClassMemo::new()),
            trees: Vec::new(),
            chargen_done: 0,
            combined: None,
            next_star_id: 0,
            seeds: Vec::new(),
            seeds_used: 0,
            seeds_skipped: 0,
            chars_generalized: 0,
            memo_hits: 0,
            probes_elided: 0,
        }
    }

    /// One-shot convenience: opens a session, runs [`Session::add_seeds`]
    /// once, and returns the result.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::NoSeeds`] for an empty seed set and
    /// [`SynthesisError::SeedRejected`] if the oracle rejects a seed.
    pub fn synthesize(
        self,
        seeds: &[Vec<u8>],
        oracle: &dyn Oracle,
    ) -> Result<Synthesis, SynthesisError> {
        self.session(oracle).add_seeds(seeds)
    }
}

impl From<Glade> for GladeBuilder {
    fn from(glade: Glade) -> Self {
        GladeBuilder::from_config(glade.config().clone())
    }
}

/// A long-lived synthesis session: one oracle, one persistent query cache,
/// and the accumulated per-seed generalization state.
///
/// Created by [`GladeBuilder::session`]. See the crate docs for the
/// capability overview and an example.
///
/// # Determinism
///
/// With a deterministic oracle and no degradation — no time limit, no
/// cancellation, and no `max_queries` exhaustion — the grammar produced
/// after a sequence of [`Session::add_seeds`] calls is byte-identical to a
/// fresh run on the concatenated seed list, and the session's
/// distinct-query count ([`SynthesisStats::unique_queries`]) equals the
/// fresh run's — the cache answers repeated checks, it never changes which
/// checks are posed. Both are also independent of
/// [`GladeBuilder::worker_threads`]. Because the query budget applies per
/// `add_seeds` call, a budget-exhausted incremental sequence can diverge
/// from the equally-budgeted fresh run (it had more total budget, and
/// trees degraded in an early call are frozen rather than re-generalized);
/// the safety guarantees (fail-closed, every seed preserved) still hold.
pub struct Session<'o> {
    config: GladeConfig,
    oracle: &'o dyn Oracle,
    observer: Option<Arc<dyn SynthesisObserver>>,
    cancel: CancelToken,
    /// Declared oracle identity for snapshot tagging/validation.
    fingerprint: Option<String>,
    /// Session-lifetime membership-query cache (snapshot-able).
    cache: ShardedCache,
    /// Partially loaded binary snapshot attached by
    /// [`Session::attach_cache`]: a read-only second cache level whose
    /// entries fault into `cache` on first use.
    backing: Option<Mutex<BackingStore>>,
    /// Session-lifetime byte-class memo table (snapshot-able alongside the
    /// cache; see `memo.rs`). Behind a mutex so [`Session::import_cache`]
    /// — which takes `&self`, like the cache it feeds — can extend it.
    memo: Mutex<ByteClassMemo>,
    /// Per-seed generalization trees, post character generalization for
    /// indices below `chargen_done`.
    trees: Vec<Node>,
    chargen_done: usize,
    /// Disjunction of the *pre-chargen* per-seed regexes, exactly the
    /// state the Section 6.1 redundancy skip consults in a fresh run.
    combined: Option<Regex>,
    next_star_id: usize,
    seeds: Vec<Vec<u8>>,
    seeds_used: usize,
    seeds_skipped: usize,
    chars_generalized: usize,
    /// Cumulative query-reduction counters (session lifetime, like
    /// `chars_generalized`).
    memo_hits: usize,
    probes_elided: usize,
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("config", &self.config)
            .field("seeds", &self.seeds.len())
            .field("unique_queries", &self.unique_queries())
            .field("star_count", &self.next_star_id)
            .finish()
    }
}

impl<'o> Session<'o> {
    /// The session configuration (fixed at build time).
    pub fn config(&self) -> &GladeConfig {
        &self.config
    }

    /// A clonable handle that cancels this session's runs when triggered.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Every seed submitted so far, in submission order (including seeds
    /// skipped as redundant).
    pub fn seeds(&self) -> &[Vec<u8>] {
        &self.seeds
    }

    /// Distinct membership queries known so far: every distinct key ever
    /// inserted into the in-memory cache, plus the entries of an attached
    /// binary snapshot not yet faulted in — so a partial load reports the
    /// same count as a full load of the same snapshot.
    pub fn unique_queries(&self) -> usize {
        let pending = self
            .backing
            .as_ref()
            .map_or(0, |b| b.lock().expect("backing cache poisoned").pending());
        self.cache.len() + pending
    }

    /// Entries currently resident in the in-memory cache. Differs from
    /// [`Session::unique_queries`] only under a
    /// [`GladeBuilder::max_cache_entries`] cap or an attached snapshot.
    pub fn cache_resident(&self) -> usize {
        self.cache.resident()
    }

    /// Entries evicted by the [`GladeBuilder::max_cache_entries`] cap so
    /// far.
    pub fn cache_evictions(&self) -> usize {
        self.cache.evictions()
    }

    /// Cache lookups answered "absent" by the negative filter alone,
    /// without taking a shard lock — the hot-miss fast path.
    pub fn cache_filter_negatives(&self) -> usize {
        self.cache.filter_negatives()
    }

    /// Extends the synthesis with `seeds` and returns the full result over
    /// *all* seeds submitted so far.
    ///
    /// New seeds are validated, generalized (phase one), and character
    /// generalized; earlier seeds' trees are reused as-is. Phase two is
    /// re-run over the combined star set — its checks for previously
    /// examined pairs are answered by the session cache, so incremental
    /// runs pay oracle calls only for genuinely new checks. An empty
    /// `seeds` slice re-synthesizes from the current state (useful after
    /// [`Session::load_cache`] only to rebuild the grammar).
    ///
    /// The query/time budget configured on the builder applies per call,
    /// not per session.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::NoSeeds`] if the session has no seeds at
    /// all, and [`SynthesisError::SeedRejected`] if the oracle rejects a
    /// new seed (earlier seeds and session state stay untouched).
    pub fn add_seeds(&mut self, seeds: &[Vec<u8>]) -> Result<Synthesis, SynthesisError> {
        if seeds.is_empty() && self.seeds.is_empty() {
            return Err(SynthesisError::NoSeeds);
        }
        let workers = self
            .config
            .worker_threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        let observer: Option<&dyn SynthesisObserver> = self.observer.as_deref();
        if let Some(limit) = self.config.oracle_timeout {
            // Only push a configured deadline down; `None` must not
            // clobber a timeout set directly on the oracle (e.g. via
            // `PooledProcessOracle::query_timeout`).
            self.oracle.configure_timeout(Some(limit));
        }
        let runner = QueryRunner::new(
            self.oracle,
            &self.cache,
            RunnerOptions {
                max_queries: self.config.max_queries,
                time_limit: self.config.time_limit,
                workers,
                observer,
                cancel: Some(&self.cancel),
                backing: self.backing.as_ref(),
            },
        );
        let unique_before = runner.unique_queries();
        // Validate all new seeds before touching session state, so a
        // rejected seed leaves the session usable.
        for seed in seeds {
            if !runner.accepts_unbudgeted(seed) {
                return Err(SynthesisError::SeedRejected(seed.clone()));
            }
        }

        let emit = |event: SynthEvent| {
            if let Some(obs) = observer {
                obs.on_event(&event);
            }
        };
        let mut stats = SynthesisStats::default();

        // Phase one, new seeds only, seed by seed (Section 6.1).
        let t0 = Instant::now();
        if !seeds.is_empty() {
            emit(SynthEvent::PhaseStarted { phase: SynthPhase::Phase1 });
        }
        let mut phase1 = Phase1::new(&runner, self.next_star_id);
        for seed in seeds {
            let seed_index = self.seeds.len();
            self.seeds.push(seed.clone());
            if self.config.skip_redundant_seeds {
                if let Some(r) = &self.combined {
                    if r.is_match(seed) {
                        self.seeds_skipped += 1;
                        emit(SynthEvent::SeedSkipped { seed_index });
                        continue;
                    }
                }
            }
            let stars_before = phase1.next_star_id();
            let tree = phase1.generalize_seed(seed);
            let tree_regex = tree.to_regex();
            self.combined = Some(match self.combined.take() {
                Some(r) => Regex::alt(vec![r, tree_regex]),
                None => tree_regex,
            });
            self.trees.push(tree);
            self.seeds_used += 1;
            emit(SynthEvent::SeedGeneralized {
                seed_index,
                new_stars: phase1.next_star_id() - stars_before,
            });
        }
        self.next_star_id = phase1.next_star_id();
        stats.phase1_time = t0.elapsed();
        if !seeds.is_empty() {
            emit(SynthEvent::PhaseFinished {
                phase: SynthPhase::Phase1,
                elapsed: stats.phase1_time,
                unique_queries: runner.unique_queries(),
            });
        }

        // Character generalization (Section 6.2, new trees only — earlier
        // trees were already widened, and re-probing them would only replay
        // cache hits) and phase two (Section 5, recomputed over the
        // combined star set; pairs examined by earlier runs are answered by
        // the session cache) share aggregated membership batches, so the
        // worker pool stays saturated across the stage boundary instead of
        // draining between chargen's per-terminal work and the merge sweep.
        // Verdicts are folded sequentially in planning order, keeping the
        // grammar worker-count-independent.
        //
        // Two planners implement the stages. The default *staged* path
        // plans in waves through the query-reduction layer (byte-class
        // memoization, context short-circuiting, in-wave dedup, merge
        // pre-accept — see `chargen.rs`), eliding provably-redundant
        // checks before they reach the runner. With
        // `memoize_byte_classes(false)` the historical *one-shot* path
        // plans every check up front and poses them as a single batch.
        // Every staged elision is exact, so both paths synthesize
        // byte-identical grammars; only the query counts differ.
        let do_chargen =
            self.config.character_generalization && self.chargen_done < self.trees.len();
        let t1 = Instant::now();
        let mut merges = if !self.config.memoize_byte_classes {
            let mut checks = Vec::new();
            let chargen_plan = if do_chargen {
                emit(SynthEvent::PhaseStarted { phase: SynthPhase::CharGeneralization });
                Some(plan_char_probes(
                    &self.trees[self.chargen_done..],
                    &self.config.char_test_bytes,
                    &mut checks,
                ))
            } else {
                None
            };
            // When chargen has no work the batch is phase two's alone and
            // runs inside the phase-two window; otherwise phase two's
            // checks ride along in the batch posed during chargen and its
            // own window only folds the (already computed) verdicts.
            if self.config.phase2 && chargen_plan.is_none() {
                emit(SynthEvent::PhaseStarted { phase: SynthPhase::Phase2 });
            }
            let merge_plan = self
                .config
                .phase2
                .then(|| plan_merge_checks(&self.trees, self.next_star_id, &mut checks));
            // Nothing planned (e.g. a phase1-only config) poses nothing —
            // the runner is not consulted, so no phantom empty QueryBatch
            // event.
            let batch_start = Instant::now();
            let verdicts =
                if checks.is_empty() { Vec::new() } else { runner.accepts_batch(&checks) };
            let batch_time = batch_start.elapsed();
            let total_checks = checks.len();
            drop(checks); // releases the immutable borrow of the trees

            // The batch is shared, its wall time is not one phase's:
            // attribute it pro rata by check count so chargen_time /
            // phase2_time keep meaning "time spent on this phase's oracle
            // work" (phase two's O(stars²) merge checks dominate real
            // batches and must not be billed to chargen).
            let merge_offset = chargen_plan.as_ref().map_or(0, |p| p.checks_len);
            let chargen_batch_share = if total_checks == 0 {
                Duration::ZERO
            } else {
                batch_time.mul_f64(merge_offset as f64 / total_checks as f64)
            };
            if let Some(plan) = &chargen_plan {
                self.chars_generalized += apply_char_probes(
                    &mut self.trees[self.chargen_done..],
                    plan,
                    &verdicts[..plan.checks_len],
                );
                self.chargen_done = self.trees.len();
                stats.chargen_time = t1.elapsed().saturating_sub(batch_time) + chargen_batch_share;
                emit(SynthEvent::PhaseFinished {
                    phase: SynthPhase::CharGeneralization,
                    elapsed: stats.chargen_time,
                    unique_queries: runner.unique_queries(),
                });
            }

            let t2 = Instant::now();
            if let Some(plan) = &merge_plan {
                if chargen_plan.is_some() {
                    emit(SynthEvent::PhaseStarted { phase: SynthPhase::Phase2 });
                }
                let (uf, mstats) = apply_merge_verdicts(plan, &verdicts[merge_offset..], observer);
                stats.merge_pairs_tried = mstats.pairs_tried;
                stats.merges_accepted = mstats.merges_accepted;
                stats.phase2_time = if chargen_plan.is_some() {
                    t2.elapsed() + batch_time.saturating_sub(chargen_batch_share)
                } else {
                    t1.elapsed()
                };
                emit(SynthEvent::PhaseFinished {
                    phase: SynthPhase::Phase2,
                    elapsed: stats.phase2_time,
                    unique_queries: runner.unique_queries(),
                });
                uf
            } else {
                UnionFind::new(self.next_star_id)
            }
        } else {
            // Staged path: both stages advance one context / one check per
            // probe per wave, resolving as much as possible against the
            // session cache and memo table between waves. Each wave is one
            // aggregated batch; the loop ends when neither stage has
            // anything left to pose (chargen needs at most max-contexts
            // waves, merge at most two, and they overlap).
            let mut staged_cg = if do_chargen {
                emit(SynthEvent::PhaseStarted { phase: SynthPhase::CharGeneralization });
                let memo = self.memo.lock().expect("memo mutex poisoned");
                Some(StagedChargen::new(
                    &self.trees[self.chargen_done..],
                    &self.config.char_test_bytes,
                    &memo,
                ))
            } else {
                None
            };
            if self.config.phase2 && staged_cg.is_none() {
                emit(SynthEvent::PhaseStarted { phase: SynthPhase::Phase2 });
            }
            let mut staged_mg =
                self.config.phase2.then(|| StagedMerge::new(&self.trees, self.next_star_id));

            let mut batch_total = Duration::ZERO;
            let mut chargen_batch_share = Duration::ZERO;
            let mut wave_checks: Vec<CheckSpec<'_>> = Vec::new();
            loop {
                wave_checks.clear();
                let cg_n =
                    staged_cg.as_mut().map_or(0, |s| s.plan_wave(&mut wave_checks, &self.cache));
                let mg_n =
                    staged_mg.as_mut().map_or(0, |s| s.plan_wave(&mut wave_checks, &self.cache));
                if cg_n + mg_n == 0 {
                    break;
                }
                let wave_start = Instant::now();
                let verdicts = runner.accepts_batch(&wave_checks);
                let wave_time = wave_start.elapsed();
                batch_total += wave_time;
                // Attribute shared-wave wall time pro rata by check count,
                // as the one-shot path does for its single batch.
                chargen_batch_share += wave_time.mul_f64(cg_n as f64 / (cg_n + mg_n) as f64);
                if let Some(s) = staged_cg.as_mut() {
                    s.fold_wave(&verdicts[..cg_n]);
                }
                if let Some(s) = staged_mg.as_mut() {
                    s.fold_wave(&verdicts[cg_n..]);
                }
            }
            drop(wave_checks); // releases the immutable borrow of the trees
            let cg_outcome = staged_cg.map(StagedChargen::finish);
            let mg_outcome = staged_mg.map(StagedMerge::finish);

            let mut run_elided = 0usize;
            let mut run_memo_hits = 0usize;
            if let Some(outcome) = cg_outcome {
                apply_staged_classes(&mut self.trees[self.chargen_done..], &outcome.classes);
                self.chargen_done = self.trees.len();
                self.chars_generalized += outcome.accepted;
                run_elided += outcome.probes_elided;
                run_memo_hits += outcome.memo_hits;
                // A degraded run's classes embed fail-closed verdicts —
                // they are safe for *this* run's grammar but are not facts
                // about the language, so they must never be memoized.
                if !runner.exhausted() {
                    let mut memo = self.memo.lock().expect("memo mutex poisoned");
                    for (key, classes) in outcome.memo_inserts {
                        memo.insert(key, classes);
                    }
                }
                stats.chargen_time = t1.elapsed().saturating_sub(batch_total) + chargen_batch_share;
                emit(SynthEvent::PhaseFinished {
                    phase: SynthPhase::CharGeneralization,
                    elapsed: stats.chargen_time,
                    unique_queries: runner.unique_queries(),
                });
            }

            let t2 = Instant::now();
            let merges = if let Some(outcome) = mg_outcome {
                if do_chargen {
                    emit(SynthEvent::PhaseStarted { phase: SynthPhase::Phase2 });
                }
                for &(left, right) in &outcome.accepted {
                    emit(SynthEvent::MergeAccepted { left_star: left, right_star: right });
                }
                stats.merge_pairs_tried = outcome.stats.pairs_tried;
                stats.merges_accepted = outcome.stats.merges_accepted;
                run_elided += outcome.probes_elided;
                stats.phase2_time = if do_chargen {
                    t2.elapsed() + batch_total.saturating_sub(chargen_batch_share)
                } else {
                    t1.elapsed()
                };
                emit(SynthEvent::PhaseFinished {
                    phase: SynthPhase::Phase2,
                    elapsed: stats.phase2_time,
                    unique_queries: runner.unique_queries(),
                });
                outcome.uf
            } else {
                UnionFind::new(self.next_star_id)
            };

            self.probes_elided += run_elided;
            self.memo_hits += run_memo_hits;
            if run_elided + run_memo_hits > 0 {
                emit(SynthEvent::ProbesElided { elided: run_elided, memo_hits: run_memo_hits });
            }
            merges
        };

        let grammar = trees_to_grammar(&self.trees, &mut merges);
        let regex = Regex::alt(self.trees.iter().map(Node::to_regex).collect());

        stats.seeds_used = self.seeds_used;
        stats.seeds_skipped = self.seeds_skipped;
        stats.star_count = self.next_star_id;
        stats.tree_nodes = self.trees.iter().map(Node::size).sum();
        stats.chars_generalized = self.chars_generalized;
        stats.memo_hits = self.memo_hits;
        stats.probes_elided = self.probes_elided;
        stats.unique_queries = runner.unique_queries();
        stats.new_unique_queries = runner.unique_queries() - unique_before;
        stats.total_queries = runner.total_queries();
        stats.budget_exhausted = runner.exhausted();
        stats.cancelled = runner.was_cancelled();
        stats.oracle_failures = runner.oracle_failures();
        stats.timed_out_queries = runner.timed_out_queries();
        stats.tripped_workers = runner.tripped_workers();

        Ok(Synthesis { grammar, regex, stats })
    }

    /// Serializes the session's query cache — and, when non-empty, its
    /// byte-class memo table — to snapshot text (see `persist.rs`):
    /// `glade-cache v3` when memo entries are present, otherwise
    /// `glade-cache v2` tagged with the session's oracle fingerprint when
    /// one was declared through [`GladeBuilder::oracle_fingerprint`], or
    /// plain `glade-cache v1`. Entries are sorted, so equal sessions
    /// produce byte-identical snapshots.
    pub fn export_cache(&self) -> String {
        snapshot_to_text_with_memo(
            &self.cache.snapshot(),
            &self.memo_entries(),
            self.fingerprint.as_deref(),
        )
    }

    /// Serializes the session's query cache and memo table to a
    /// `glade-cachebin v1` binary snapshot — same contents as
    /// [`Session::export_cache`] in the compact indexed format (see
    /// `persist.rs`), and equally canonical: equal sessions produce
    /// byte-identical snapshots.
    ///
    /// Both exports serialize the *resident* cache: entries evicted by a
    /// [`GladeBuilder::max_cache_entries`] cap, or never faulted in from
    /// an attached snapshot, are not re-exported (the attached file still
    /// holds the latter).
    pub fn export_cache_binary(&self) -> Vec<u8> {
        snapshot_to_binary(
            &self.cache.snapshot(),
            &self.memo_entries(),
            self.fingerprint.as_deref(),
        )
    }

    fn memo_entries(&self) -> Vec<MemoEntry> {
        self.memo
            .lock()
            .expect("memo mutex poisoned")
            .entries_sorted()
            .into_iter()
            .map(|(key, classes)| MemoEntry { key: key.to_be_bytes(), classes })
            .collect()
    }

    /// Loads snapshot text (v1, v2, or v3) into the session cache,
    /// returning the number of *query* entries read. A v3 snapshot's memo
    /// entries load into the byte-class memo table (they are not counted),
    /// warm-starting character generalization past whole terminals.
    /// Existing entries keep their verdict (a snapshot from the same
    /// deterministic oracle always agrees).
    ///
    /// # Errors
    ///
    /// Returns a [`CacheError`] describing the first malformed line, or
    /// [`CacheError::OracleMismatch`] — without touching the cache — when
    /// both the session and the snapshot declare oracle fingerprints and
    /// they differ (the verdicts are facts about a *different* target;
    /// replaying them would silently corrupt synthesis). Untagged v1
    /// snapshots always load.
    pub fn import_cache(&self, text: &str) -> Result<usize, CacheError> {
        self.import_snapshot(snapshot_from_text(text)?)
    }

    /// Validates a parsed snapshot's fingerprint against the session's
    /// and folds its entries and memo classes in — the shared tail of
    /// every load path (text or binary, slice or stream).
    fn import_snapshot(&self, snapshot: CacheSnapshot) -> Result<usize, CacheError> {
        self.check_fingerprint(snapshot.oracle_fingerprint.as_deref())?;
        let count = snapshot.entries.len();
        for (query, verdict) in snapshot.entries {
            self.cache.insert(query, verdict);
        }
        if !snapshot.memo.is_empty() {
            let mut memo = self.memo.lock().expect("memo mutex poisoned");
            for entry in snapshot.memo {
                memo.insert(u128::from_be_bytes(entry.key), entry.classes);
            }
        }
        Ok(count)
    }

    /// [`CacheError::OracleMismatch`] when both the session and a snapshot
    /// declare fingerprints and they differ.
    fn check_fingerprint(&self, found: Option<&str>) -> Result<(), CacheError> {
        if let (Some(expected), Some(found)) = (self.fingerprint.as_deref(), found) {
            if expected != found {
                return Err(CacheError::OracleMismatch {
                    snapshot: found.to_owned(),
                    expected: expected.to_owned(),
                });
            }
        }
        Ok(())
    }

    /// Writes the cache snapshot to `path`, atomically and durably: the
    /// snapshot is written to a sibling temporary file, fsynced, renamed
    /// over `path`, and the directory entry is fsynced — a crash or power
    /// loss mid-save leaves either the old snapshot or the new one, never
    /// a truncated hybrid.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::Io`] if the file cannot be written.
    pub fn save_cache(&self, path: impl AsRef<Path>) -> Result<(), CacheError> {
        self.save_cache_as(path, CacheFormat::Text)
    }

    /// [`Session::save_cache`] with an explicit on-disk format: text
    /// (`glade-cache v1`–`v3`) or binary (`glade-cachebin v1`). Both are
    /// written with the same atomic-and-durable protocol, and
    /// [`Session::load_cache`] reads either back by sniffing the magic.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::Io`] if the file cannot be written.
    pub fn save_cache_as(
        &self,
        path: impl AsRef<Path>,
        format: CacheFormat,
    ) -> Result<(), CacheError> {
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let bytes = match format {
            CacheFormat::Text => self.export_cache().into_bytes(),
            CacheFormat::Binary => self.export_cache_binary(),
        };
        crate::persist::write_durable(path, Path::new(&tmp), &bytes)?;
        Ok(())
    }

    /// Reads a cache snapshot from `path` into the session cache,
    /// returning the number of entries read. The format is sniffed from
    /// the file's magic: `glade-cachebin v1` snapshots take the binary
    /// loader, anything else the streaming text parser (v1–v3) — so
    /// every historical snapshot keeps loading unchanged. Either way the
    /// file is streamed, not slurped: peak memory is the decoded entries,
    /// not entries plus the raw file.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::Io`] if the file cannot be read, or a format
    /// error for a malformed snapshot.
    pub fn load_cache(&self, path: impl AsRef<Path>) -> Result<usize, CacheError> {
        let file = std::fs::File::open(path)?;
        let mut reader = std::io::BufReader::new(file);
        let snapshot = if is_binary_snapshot(reader.fill_buf()?) {
            snapshot_from_binary_reader(&mut reader)?
        } else {
            snapshot_from_reader(reader)?
        };
        self.import_snapshot(snapshot)
    }

    /// Attaches a binary snapshot as a read-only second cache level
    /// *without* loading its entries: the header is validated (and its
    /// fingerprint checked like [`Session::load_cache`]), memo entries
    /// load eagerly (they are few and all consulted up front), and query
    /// entries fault into the in-memory cache on first use via the
    /// snapshot's on-disk index — the partial-load path for snapshots
    /// larger than memory. Returns the snapshot's entry count.
    ///
    /// Grammar bytes and `unique_queries` are identical to a full
    /// [`Session::load_cache`] of the same snapshot; only I/O differs.
    /// At most one snapshot is attached — a second call replaces the
    /// first — and attaching a snapshot that was *also* fully loaded into
    /// this session would double-count its entries; use one or the other.
    ///
    /// # Errors
    ///
    /// As [`BinaryCacheFile::open`], plus
    /// [`CacheError::OracleMismatch`] on fingerprint mismatch.
    pub fn attach_cache(&mut self, path: impl AsRef<Path>) -> Result<usize, CacheError> {
        let mut file = BinaryCacheFile::open(path)?;
        self.check_fingerprint(file.fingerprint())?;
        if file.memo_len() > 0 {
            let entries = file.load_memo()?;
            let mut memo = self.memo.lock().expect("memo mutex poisoned");
            for entry in entries {
                memo.insert(u128::from_be_bytes(entry.key), entry.classes);
            }
        }
        let count = file.len();
        self.backing = Some(Mutex::new(BackingStore { file, faulted: 0 }));
        Ok(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventLog;
    use crate::testing::xml_like;
    use crate::FnOracle;
    use glade_grammar::Earley;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn builder_configures_every_knob() {
        let b = GladeBuilder::new()
            .phase2(false)
            .character_generalization(false)
            .char_test_bytes(vec![b'a', b'b'])
            .memoize_byte_classes(false)
            .max_queries(7)
            .time_limit(Duration::from_secs(3))
            .oracle_timeout(Duration::from_secs(9))
            .skip_redundant_seeds(false)
            .worker_threads(2);
        let c = b.config();
        assert!(!c.phase2);
        assert!(!c.character_generalization);
        assert_eq!(c.char_test_bytes, vec![b'a', b'b']);
        assert!(!c.memoize_byte_classes);
        assert_eq!(c.max_queries, Some(7));
        assert_eq!(c.time_limit, Some(Duration::from_secs(3)));
        assert_eq!(c.oracle_timeout, Some(Duration::from_secs(9)));
        assert!(!c.skip_redundant_seeds);
        assert_eq!(c.worker_threads, Some(2));
    }

    #[test]
    fn one_shot_synthesize_matches_session_run() {
        let oracle = FnOracle::new(xml_like);
        let one_shot = GladeBuilder::new().synthesize(&[b"<a>hi</a>".to_vec()], &oracle).unwrap();
        let mut session = GladeBuilder::new().session(&oracle);
        let run = session.add_seeds(&[b"<a>hi</a>".to_vec()]).unwrap();
        assert_eq!(
            glade_grammar::grammar_to_text(&one_shot.grammar),
            glade_grammar::grammar_to_text(&run.grammar)
        );
        assert_eq!(one_shot.stats.unique_queries, run.stats.unique_queries);
        assert_eq!(run.stats.new_unique_queries, run.stats.unique_queries);
    }

    #[test]
    fn empty_first_call_errors_but_session_survives() {
        let oracle = FnOracle::new(xml_like);
        let mut session = GladeBuilder::new().session(&oracle);
        assert!(matches!(session.add_seeds(&[]), Err(SynthesisError::NoSeeds)));
        let ok = session.add_seeds(&[b"<a>hi</a>".to_vec()]).unwrap();
        assert!(Earley::new(&ok.grammar).accepts(b"<a>hi</a>"));
        // Empty follow-up re-synthesizes from existing state.
        let again = session.add_seeds(&[]).unwrap();
        assert_eq!(
            glade_grammar::grammar_to_text(&ok.grammar),
            glade_grammar::grammar_to_text(&again.grammar)
        );
        assert_eq!(again.stats.new_unique_queries, 0, "re-run is fully cached");
    }

    #[test]
    fn rejected_seed_leaves_session_usable() {
        let oracle = FnOracle::new(xml_like);
        let mut session = GladeBuilder::new().session(&oracle);
        session.add_seeds(&[b"<a>hi</a>".to_vec()]).unwrap();
        let err = session.add_seeds(&[b"<bad".to_vec()]).unwrap_err();
        assert_eq!(err, SynthesisError::SeedRejected(b"<bad".to_vec()));
        assert_eq!(session.seeds().len(), 1, "rejected batch not recorded");
        let ok = session.add_seeds(&[b"xy".to_vec()]).unwrap();
        assert!(Earley::new(&ok.grammar).accepts(b"xy"));
    }

    #[test]
    fn incremental_skips_redundant_later_seed() {
        let oracle = FnOracle::new(xml_like);
        let mut session = GladeBuilder::new().session(&oracle);
        session.add_seeds(&[b"<a>hi</a>".to_vec()]).unwrap();
        // Covered by the first seed's pre-chargen regex (<a>[hi]*</a>)*.
        let r = session.add_seeds(&[b"<a>hi</a><a>hi</a>".to_vec()]).unwrap();
        assert_eq!(r.stats.seeds_used, 1);
        assert_eq!(r.stats.seeds_skipped, 1);
    }

    #[test]
    fn observer_sees_phases_seeds_and_merges() {
        let log = Arc::new(EventLog::new());
        let oracle = FnOracle::new(xml_like);
        let mut session = GladeBuilder::new().observer(log.clone()).session(&oracle);
        session.add_seeds(&[b"<a>hi</a>".to_vec()]).unwrap();
        let events = log.events();
        let started: Vec<SynthPhase> = events
            .iter()
            .filter_map(|e| match e {
                SynthEvent::PhaseStarted { phase } => Some(*phase),
                _ => None,
            })
            .collect();
        assert_eq!(
            started,
            vec![SynthPhase::Phase1, SynthPhase::CharGeneralization, SynthPhase::Phase2]
        );
        let finished =
            events.iter().filter(|e| matches!(e, SynthEvent::PhaseFinished { .. })).count();
        assert_eq!(finished, 3);
        assert!(events
            .iter()
            .any(|e| matches!(e, SynthEvent::SeedGeneralized { seed_index: 0, new_stars: 2 })));
        assert!(events
            .iter()
            .any(|e| matches!(e, SynthEvent::MergeAccepted { left_star: 0, right_star: 1 })));
        assert!(events.iter().any(|e| matches!(e, SynthEvent::QueryBatch { .. })));
    }

    #[test]
    fn budget_exhaustion_event_and_stat() {
        let log = Arc::new(EventLog::new());
        let oracle = FnOracle::new(xml_like);
        let mut session = GladeBuilder::new().max_queries(5).observer(log.clone()).session(&oracle);
        let result = session.add_seeds(&[b"<a>hi</a>".to_vec()]).unwrap();
        assert!(result.stats.budget_exhausted);
        assert!(!result.stats.cancelled);
        assert!(log.events().contains(&SynthEvent::BudgetExhausted));
        assert!(Earley::new(&result.grammar).accepts(b"<a>hi</a>"), "seed survives");
    }

    #[test]
    fn cancellation_mid_run_yields_seed_preserving_grammar() {
        // Cancel from inside the oracle after a fixed number of calls —
        // deterministic "mid-phase" cancellation.
        let token = CancelToken::new();
        let calls = AtomicUsize::new(0);
        let token_in_oracle = token.clone();
        let oracle = FnOracle::new(move |i: &[u8]| {
            if calls.fetch_add(1, Ordering::Relaxed) + 1 == 40 {
                token_in_oracle.cancel();
            }
            xml_like(i)
        });
        let log = Arc::new(EventLog::new());
        let mut session = GladeBuilder::new()
            .worker_threads(1)
            .cancel_token(token)
            .observer(log.clone())
            .session(&oracle);
        let result = session.add_seeds(&[b"<a>hi</a>".to_vec()]).unwrap();
        assert!(result.stats.cancelled);
        assert!(result.stats.budget_exhausted, "cancel shares the fail-closed path");
        assert!(log.events().contains(&SynthEvent::Cancelled));
        assert!(Earley::new(&result.grammar).accepts(b"<a>hi</a>"), "seed survives");
        // Far fewer queries than the full run's 1324.
        assert!(result.stats.unique_queries < 300, "{}", result.stats.unique_queries);
    }

    #[test]
    fn cancel_token_accessor_cancels_future_runs() {
        let oracle = FnOracle::new(xml_like);
        let mut session = GladeBuilder::new().session(&oracle);
        session.cancel_token().cancel();
        let result = session.add_seeds(&[b"<a>hi</a>".to_vec()]).unwrap();
        assert!(result.stats.cancelled);
        assert!(Earley::new(&result.grammar).accepts(b"<a>hi</a>"));
    }

    #[test]
    fn cloned_builders_do_not_share_an_implicit_cancel_token() {
        // Regression: CancelToken is sticky and shared by clone, so a
        // derived Clone on the builder must not hand the same implicit
        // token to every session built from clones — cancelling one
        // session would silently degrade the others.
        let oracle = FnOracle::new(xml_like);
        let builder = GladeBuilder::new();
        let mut s1 = builder.clone().session(&oracle);
        let mut s2 = builder.session(&oracle);
        s1.cancel_token().cancel();
        let r1 = s1.add_seeds(&[b"<a>hi</a>".to_vec()]).unwrap();
        let r2 = s2.add_seeds(&[b"<a>hi</a>".to_vec()]).unwrap();
        assert!(r1.stats.cancelled);
        assert!(!r2.stats.cancelled, "sibling session inherited the cancel");
        // An explicitly installed token IS shared — that is its purpose.
        let token = CancelToken::new();
        let shared = GladeBuilder::new().cancel_token(token.clone());
        let mut s3 = shared.clone().session(&oracle);
        token.cancel();
        assert!(s3.add_seeds(&[b"<a>hi</a>".to_vec()]).unwrap().stats.cancelled);
    }

    #[test]
    fn cache_export_import_roundtrip_is_cold_start_free() {
        let oracle = FnOracle::new(xml_like);
        let mut warm = GladeBuilder::new().session(&oracle);
        let first = warm.add_seeds(&[b"<a>hi</a>".to_vec()]).unwrap();
        let snapshot = warm.export_cache();

        let counted = AtomicUsize::new(0);
        let counting_oracle = FnOracle::new(|i: &[u8]| {
            counted.fetch_add(1, Ordering::Relaxed);
            xml_like(i)
        });
        let mut cold = GladeBuilder::new().session(&counting_oracle);
        let loaded = cold.import_cache(&snapshot).unwrap();
        assert_eq!(loaded, first.stats.unique_queries);
        let second = cold.add_seeds(&[b"<a>hi</a>".to_vec()]).unwrap();
        assert_eq!(second.stats.new_unique_queries, 0, "every check was answered");
        assert_eq!(counted.load(Ordering::Relaxed), 0, "oracle never consulted");
        assert_eq!(
            glade_grammar::grammar_to_text(&first.grammar),
            glade_grammar::grammar_to_text(&second.grammar)
        );
    }

    #[test]
    fn import_rejects_malformed_snapshots() {
        let oracle = FnOracle::new(xml_like);
        let session = GladeBuilder::new().session(&oracle);
        assert!(matches!(session.import_cache("nope"), Err(CacheError::BadHeader)));
        assert!(matches!(
            session.import_cache("glade-cache v1\nq 9 61\n"),
            Err(CacheError::BadField(2))
        ));
    }

    #[test]
    fn fingerprinted_sessions_tag_and_validate_snapshots() {
        let oracle = FnOracle::new(xml_like);
        // Memo off: the memo table stays empty, so tagged snapshots keep
        // the historical v2 format byte-for-byte.
        let mut tagged = GladeBuilder::new()
            .memoize_byte_classes(false)
            .oracle_fingerprint("target:toy-xml")
            .session(&oracle);
        tagged.add_seeds(&[b"<a>hi</a>".to_vec()]).unwrap();
        let snapshot = tagged.export_cache();
        assert!(snapshot.starts_with("glade-cache v2\noracle "), "tagged snapshots are v2");

        // Same fingerprint: loads.
        let same = GladeBuilder::new().oracle_fingerprint("target:toy-xml").session(&oracle);
        assert!(same.import_cache(&snapshot).unwrap() > 0);

        // Different fingerprint: rejected without touching the cache.
        let other = GladeBuilder::new().oracle_fingerprint("target:lisp").session(&oracle);
        let err = other.import_cache(&snapshot).unwrap_err();
        assert!(
            matches!(&err, CacheError::OracleMismatch { snapshot, expected }
                if snapshot == "target:toy-xml" && expected == "target:lisp"),
            "{err}"
        );
        assert_eq!(other.unique_queries(), 0, "rejected snapshot left no verdicts behind");

        // A session without a declared fingerprint loads anything.
        let unfingerprinted = GladeBuilder::new().session(&oracle);
        assert!(unfingerprinted.import_cache(&snapshot).unwrap() > 0);

        // And a tagged session still accepts legacy untagged v1 snapshots.
        let untagged = GladeBuilder::new().session(&oracle);
        let v1 = untagged.export_cache();
        assert!(v1.starts_with("glade-cache v1\n"));
        let tagged2 = GladeBuilder::new().oracle_fingerprint("target:toy-xml").session(&oracle);
        assert_eq!(tagged2.import_cache(&v1).unwrap(), 0);
    }

    #[test]
    fn memoized_run_matches_legacy_grammar_and_reports_elisions() {
        let seeds = [b"<a>hi</a>".to_vec(), b"<a><a>x</a></a>".to_vec()];
        let oracle = FnOracle::new(xml_like);
        let on = GladeBuilder::new().synthesize(&seeds, &oracle).unwrap();
        let off =
            GladeBuilder::new().memoize_byte_classes(false).synthesize(&seeds, &oracle).unwrap();
        assert_eq!(
            glade_grammar::grammar_to_text(&on.grammar),
            glade_grammar::grammar_to_text(&off.grammar),
            "elision must never change the grammar"
        );
        assert_eq!(on.regex.to_string(), off.regex.to_string());
        assert_eq!(on.stats.chars_generalized, off.stats.chars_generalized);
        assert_eq!(on.stats.merges_accepted, off.stats.merges_accepted);
        assert_eq!(on.stats.merge_pairs_tried, off.stats.merge_pairs_tried);
        assert!(on.stats.probes_elided > 0, "staged run elided nothing");
        assert!(on.stats.unique_queries < off.stats.unique_queries);
        assert!(on.stats.total_queries < off.stats.total_queries);
        assert_eq!(off.stats.probes_elided, 0);
        assert_eq!(off.stats.memo_hits, 0);
    }

    #[test]
    fn probes_elided_event_reports_run_savings() {
        let log = Arc::new(EventLog::new());
        let oracle = FnOracle::new(xml_like);
        let mut session = GladeBuilder::new().observer(log.clone()).session(&oracle);
        let result = session.add_seeds(&[b"<a>hi</a>".to_vec()]).unwrap();
        let reported = log.events().iter().find_map(|e| match e {
            SynthEvent::ProbesElided { elided, memo_hits } => Some((*elided, *memo_hits)),
            _ => None,
        });
        let (elided, memo_hits) = reported.expect("staged run must report its elisions");
        assert_eq!(elided, result.stats.probes_elided);
        assert_eq!(memo_hits, result.stats.memo_hits);
        assert!(elided > 0);
    }

    #[test]
    fn memo_snapshot_warm_starts_a_second_session() {
        let oracle = FnOracle::new(xml_like);
        let mut warm = GladeBuilder::new().session(&oracle);
        let first = warm.add_seeds(&[b"<a>hi</a>".to_vec()]).unwrap();
        let snapshot = warm.export_cache();
        assert!(snapshot.starts_with("glade-cache v3\n"), "memoizing sessions export v3");

        // A memo-laden snapshot warm-starts chargen wholesale: the second
        // session adopts every terminal's classes (memo hits) and poses
        // strictly fewer probes than the first session did.
        let mut cold = GladeBuilder::new().session(&oracle);
        cold.import_cache(&snapshot).unwrap();
        let second = cold.add_seeds(&[b"<a>hi</a>".to_vec()]).unwrap();
        assert!(second.stats.memo_hits > 0, "imported memo entries unused");
        assert!(second.stats.probes_elided > first.stats.probes_elided);
        assert_eq!(second.stats.new_unique_queries, 0);
        assert_eq!(
            glade_grammar::grammar_to_text(&first.grammar),
            glade_grammar::grammar_to_text(&second.grammar)
        );

        // And a pre-memo (v2/v1) snapshot still loads cleanly: same cache
        // warm start, just no memo adoption.
        let mut legacy = GladeBuilder::new().memoize_byte_classes(false).session(&oracle);
        let legacy_first = legacy.add_seeds(&[b"<a>hi</a>".to_vec()]).unwrap();
        let v1 = legacy.export_cache();
        assert!(v1.starts_with("glade-cache v1\n"));
        let fresh = GladeBuilder::new().session(&oracle);
        assert_eq!(fresh.import_cache(&v1).unwrap(), legacy_first.stats.unique_queries);
    }

    #[test]
    fn builder_from_glade_carries_config() {
        let glade = Glade::with_config(GladeConfig::phase1_only());
        let builder = GladeBuilder::from(glade);
        assert!(!builder.config().phase2);
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("glade-session-{}-{name}", std::process::id()))
    }

    #[test]
    fn binary_save_load_warm_starts_with_zero_new_queries() {
        let oracle = FnOracle::new(xml_like);
        let mut warm = GladeBuilder::new().session(&oracle);
        let first = warm.add_seeds(&[b"<a>hi</a>".to_vec()]).unwrap();
        let path = temp_path("binary-roundtrip.glade-cache");
        warm.save_cache_as(&path, crate::persist::CacheFormat::Binary).unwrap();

        let counted = AtomicUsize::new(0);
        let counting_oracle = FnOracle::new(|i: &[u8]| {
            counted.fetch_add(1, Ordering::Relaxed);
            xml_like(i)
        });
        let mut cold = GladeBuilder::new().session(&counting_oracle);
        let loaded = cold.load_cache(&path).unwrap();
        assert_eq!(loaded, first.stats.unique_queries);
        let second = cold.add_seeds(&[b"<a>hi</a>".to_vec()]).unwrap();
        assert_eq!(second.stats.new_unique_queries, 0, "binary warm start re-paid queries");
        assert_eq!(counted.load(Ordering::Relaxed), 0, "oracle never consulted");
        assert_eq!(second.stats.unique_queries, first.stats.unique_queries);
        assert_eq!(
            glade_grammar::grammar_to_text(&first.grammar),
            glade_grammar::grammar_to_text(&second.grammar)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn text_and_binary_snapshots_load_identically() {
        let oracle = FnOracle::new(xml_like);
        let mut warm = GladeBuilder::new().session(&oracle);
        warm.add_seeds(&[b"<a>hi</a>".to_vec()]).unwrap();
        let text_path = temp_path("fmt-equiv.text.glade-cache");
        let bin_path = temp_path("fmt-equiv.bin.glade-cache");
        warm.save_cache(&text_path).unwrap();
        warm.save_cache_as(&bin_path, crate::persist::CacheFormat::Text).unwrap();
        // Explicit Text equals the default save byte-for-byte.
        assert_eq!(std::fs::read(&text_path).unwrap(), std::fs::read(&bin_path).unwrap());
        warm.save_cache_as(&bin_path, crate::persist::CacheFormat::Binary).unwrap();

        let via_text = GladeBuilder::new().session(&oracle);
        let via_bin = GladeBuilder::new().session(&oracle);
        assert_eq!(
            via_text.load_cache(&text_path).unwrap(),
            via_bin.load_cache(&bin_path).unwrap(),
            "formats disagree on entry count"
        );
        assert_eq!(via_text.unique_queries(), via_bin.unique_queries());
        std::fs::remove_file(&text_path).ok();
        std::fs::remove_file(&bin_path).ok();
    }

    #[test]
    fn attached_partial_load_matches_full_load() {
        let oracle = FnOracle::new(xml_like);
        let mut warm = GladeBuilder::new().session(&oracle);
        let first = warm.add_seeds(&[b"<a>hi</a>".to_vec()]).unwrap();
        let path = temp_path("partial.glade-cache");
        warm.save_cache_as(&path, crate::persist::CacheFormat::Binary).unwrap();

        let counted = AtomicUsize::new(0);
        let counting_oracle = FnOracle::new(|i: &[u8]| {
            counted.fetch_add(1, Ordering::Relaxed);
            xml_like(i)
        });
        let mut partial = GladeBuilder::new().session(&counting_oracle);
        let attached = partial.attach_cache(&path).unwrap();
        assert_eq!(attached, first.stats.unique_queries);
        assert_eq!(partial.unique_queries(), first.stats.unique_queries, "pending count");
        let replay = partial.add_seeds(&[b"<a>hi</a>".to_vec()]).unwrap();
        assert_eq!(counted.load(Ordering::Relaxed), 0, "every check faulted from the snapshot");
        assert_eq!(replay.stats.new_unique_queries, 0);
        assert_eq!(replay.stats.unique_queries, first.stats.unique_queries);
        assert!(replay.stats.memo_hits > 0, "attached memo entries unused");
        assert_eq!(
            glade_grammar::grammar_to_text(&first.grammar),
            glade_grammar::grammar_to_text(&replay.grammar)
        );
        // Not every snapshot entry is revisited by the replay, so faulting
        // stayed partial.
        assert!(
            partial.cache_resident() < first.stats.unique_queries,
            "partial load materialized everything ({} of {})",
            partial.cache_resident(),
            first.stats.unique_queries
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn attach_cache_rejects_fingerprint_mismatch() {
        let oracle = FnOracle::new(xml_like);
        let mut tagged = GladeBuilder::new().oracle_fingerprint("target:toy-xml").session(&oracle);
        tagged.add_seeds(&[b"<a>hi</a>".to_vec()]).unwrap();
        let path = temp_path("fp.glade-cache");
        tagged.save_cache_as(&path, crate::persist::CacheFormat::Binary).unwrap();

        let mut other = GladeBuilder::new().oracle_fingerprint("target:lisp").session(&oracle);
        let err = other.attach_cache(&path).unwrap_err();
        assert!(
            matches!(&err, CacheError::OracleMismatch { snapshot, expected }
                if snapshot == "target:toy-xml" && expected == "target:lisp"),
            "{err}"
        );
        assert_eq!(other.unique_queries(), 0);
        // Same fingerprint attaches, and the binary loader validates the
        // tag through load_cache as well.
        let mut same = GladeBuilder::new().oracle_fingerprint("target:toy-xml").session(&oracle);
        assert!(same.attach_cache(&path).unwrap() > 0);
        let same_full = GladeBuilder::new().oracle_fingerprint("target:toy-xml").session(&oracle);
        assert!(same_full.load_cache(&path).unwrap() > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn eviction_cap_changes_neither_grammar_nor_unique_queries() {
        let seeds = [b"<a>hi</a>".to_vec(), b"<a><a>x</a></a>".to_vec()];
        let oracle = FnOracle::new(xml_like);
        let mut uncapped = GladeBuilder::new().session(&oracle);
        let mut capped = GladeBuilder::new().max_cache_entries(64).session(&oracle);
        let free = uncapped.add_seeds(&seeds).unwrap();
        let tight = capped.add_seeds(&seeds).unwrap();
        assert_eq!(
            glade_grammar::grammar_to_text(&free.grammar),
            glade_grammar::grammar_to_text(&tight.grammar),
            "eviction changed grammar bytes"
        );
        assert_eq!(free.stats.unique_queries, tight.stats.unique_queries);
        assert!(capped.cache_evictions() > 0, "cap of 64 never evicted");
        assert!(capped.cache_resident() <= 64);
        assert_eq!(uncapped.cache_evictions(), 0);
        // Eviction may only raise re-paid (total) queries, never verdicts.
        assert!(tight.stats.total_queries >= free.stats.total_queries);
    }
}
