//! Byte-class memo table: the cross-run half of the query-reduction layer.
//!
//! Character generalization (Section 6.2) answers, for one terminal `α`
//! with contexts `{(γ, δ)}` and a candidate alphabet `Σ_test`, the question
//! "which byte classes do `α`'s positions widen to?" The answer is a pure
//! function of `(α, contexts, Σ_test)` and the (deterministic) oracle —
//! so identical terminals in identical contexts, which are rampant in
//! structured formats (every `"` delimiter of a url, every tag byte of an
//! xml seed), re-derive the same classes from the same probe verdicts.
//!
//! [`ByteClassMemo`] memoizes that function: the key is a 128-bit FNV-1a
//! fingerprint over the length-prefixed serialization of the terminal
//! bytes, every context's `(γ, δ)` byte strings, and the candidate
//! alphabet; the value is the learned per-position byte classes. The table
//! lives in the [`Session`](crate::Session) beside the query cache, is
//! consulted by the staged chargen planner (see `chargen.rs`) before any
//! probe is posed, and persists through `glade-cache v3` snapshots (see
//! `persist.rs`) so later sessions warm-start past whole terminals.
//!
//! Entries are only recorded by runs that finished without degradation
//! (no budget exhaustion, no cancellation): a fail-closed `false` is not a
//! fact about the language, and memoizing classes derived from one would
//! replay the degradation into healthy runs.

use crate::tree::Context;
use glade_grammar::CharClass;
use std::collections::HashMap;

/// 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Feeds one length-prefixed byte string into the running hash, so
/// adjacent fields cannot alias (`"ab" + "c"` vs `"a" + "bc"`).
fn feed(mut h: u128, bytes: &[u8]) -> u128 {
    for b in (bytes.len() as u64).to_be_bytes().into_iter().chain(bytes.iter().copied()) {
        h ^= u128::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fingerprints one character-generalization problem instance: the
/// terminal's original bytes, every check context's `(γ, δ)`, and the
/// candidate alphabet. Two terminals with equal keys widen to equal
/// classes under a deterministic oracle.
pub(crate) fn memo_key(original: &[u8], contexts: &[Context], test_bytes: &[u8]) -> u128 {
    let mut h = feed(FNV_OFFSET, original);
    h = feed(h, &(contexts.len() as u64).to_be_bytes());
    for ctx in contexts {
        h = feed(h, &ctx.before);
        h = feed(h, &ctx.after);
    }
    feed(h, test_bytes)
}

/// Session-lifetime map from [`memo_key`] fingerprints to learned
/// per-position byte classes.
#[derive(Debug, Default)]
pub(crate) struct ByteClassMemo {
    entries: HashMap<u128, Vec<CharClass>>,
}

impl ByteClassMemo {
    pub fn new() -> Self {
        ByteClassMemo::default()
    }

    /// Looks up the learned classes for a fingerprint.
    pub fn get(&self, key: u128) -> Option<&Vec<CharClass>> {
        self.entries.get(&key)
    }

    /// Records learned classes. An existing entry keeps its value (the
    /// oracle is deterministic, so both computations agree).
    pub fn insert(&mut self, key: u128, classes: Vec<CharClass>) {
        self.entries.entry(key).or_insert(classes);
    }

    /// Number of memoized terminals.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Copies every entry out, sorted by key, for stable serialization.
    pub fn entries_sorted(&self) -> Vec<(u128, Vec<CharClass>)> {
        let mut out: Vec<(u128, Vec<CharClass>)> =
            self.entries.iter().map(|(&k, v)| (k, v.clone())).collect();
        out.sort_by_key(|&(k, _)| k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(before: &[u8], after: &[u8]) -> Context {
        Context { before: before.to_vec(), after: after.to_vec() }
    }

    #[test]
    fn key_is_deterministic_and_field_sensitive() {
        let base = memo_key(b"hi", &[ctx(b"<a>", b"</a>")], b"abc");
        assert_eq!(base, memo_key(b"hi", &[ctx(b"<a>", b"</a>")], b"abc"));
        assert_ne!(base, memo_key(b"ho", &[ctx(b"<a>", b"</a>")], b"abc"));
        assert_ne!(base, memo_key(b"hi", &[ctx(b"<a>", b"</b>")], b"abc"));
        assert_ne!(base, memo_key(b"hi", &[ctx(b"<a>", b"</a>")], b"abd"));
        assert_ne!(base, memo_key(b"hi", &[], b"abc"));
    }

    #[test]
    fn key_length_prefixing_prevents_field_aliasing() {
        // Moving a byte across the γ/residual boundary must change the key.
        assert_ne!(
            memo_key(b"xy", &[ctx(b"a", b"")], b""),
            memo_key(b"y", &[ctx(b"ax", b"")], b"")
        );
        // Moving a byte between γ and δ must change the key.
        assert_ne!(memo_key(b"", &[ctx(b"ab", b"")], b""), memo_key(b"", &[ctx(b"a", b"b")], b""));
        // Splitting one context into two must change the key.
        assert_ne!(
            memo_key(b"q", &[ctx(b"a", b"b")], b""),
            memo_key(b"q", &[ctx(b"a", b""), ctx(b"", b"b")], b"")
        );
    }

    #[test]
    fn table_first_insert_wins_and_sorts_stably() {
        let mut memo = ByteClassMemo::new();
        assert!(memo.get(7).is_none());
        memo.insert(7, vec![CharClass::single(b'a')]);
        memo.insert(7, vec![CharClass::single(b'z')]);
        assert_eq!(memo.get(7), Some(&vec![CharClass::single(b'a')]), "first verdict wins");
        memo.insert(3, vec![CharClass::single(b'b')]);
        assert_eq!(memo.len(), 2);
        let sorted = memo.entries_sorted();
        assert_eq!(sorted[0].0, 3);
        assert_eq!(sorted[1].0, 7);
    }
}
