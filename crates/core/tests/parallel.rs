//! Integration tests for the parallel membership-query engine and the
//! session API: thread-safety guarantees, worker-count independence of the
//! synthesized grammar (including under heavily skewed oracle latencies,
//! which exercise the work-stealing dispatch), golden query-count pins for
//! the paper's running example, incremental `add_seeds` equivalence,
//! cancellation, cache snapshot round-trips, and the pooled process
//! oracle's wire protocol and crash recovery (against an independently
//! implemented worker compiled on the fly with `rustc`).
//!
//! The query-reduction layer (byte-class memoization + staged probe
//! waves) is part of the matrix: `GLADE_TEST_MEMO=off` re-runs the suite
//! with the layer disabled against the memo-off goldens, and dedicated
//! tests pin distinct-query counts in both modes per Section 8.2 language
//! with byte-identical grammars between them.

use glade_core::testing::xml_like;
use glade_core::{
    is_binary_snapshot, CacheFormat, CachingOracle, CancelToken, EventLog, FnOracle, GladeBuilder,
    Oracle, PooledProcessOracle, ProcessOracle, SynthEvent, SynthesisStats,
};
use glade_eval::sample_seeds;
use glade_grammar::grammar_to_text;
use glade_targets::languages::{section82_languages, toy_xml};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Golden distinct-query count for the single seed `<a>hi</a>` with the
/// query-reduction layer disabled — the raw cost model of the planner.
const GOLDEN_UNIQUE_OFF: usize = 1324;
/// Golden total-query count (including cache hits) for the same run.
const GOLDEN_TOTAL_OFF: usize = 1442;
/// Golden counts for the same run with byte-class memoization, staged
/// context waves, and merge-check pruning on (the default). The grammar is
/// byte-identical to the memo-off run; only the query counts shrink. If a
/// planner change moves one of these, re-measure BOTH modes and re-assert
/// grammar equality before re-pinning.
const GOLDEN_UNIQUE_ON: usize = 965;
const GOLDEN_TOTAL_ON: usize = 985;

/// Memo mode for the matrix; `GLADE_TEST_MEMO=off` pins the query-
/// reduction layer off (the CI matrix sweeps it). Default: on, matching
/// `GladeConfig::default`.
fn matrix_memo() -> bool {
    !matches!(std::env::var("GLADE_TEST_MEMO").as_deref(), Ok("off") | Ok("0") | Ok("false"))
}

/// Cache snapshot format for the matrix; `GLADE_TEST_CACHE_FMT=bin` (or
/// `binary`) runs the persistence round-trips through the indexed binary
/// format (the CI matrix sweeps it). Default: text, matching
/// `Session::save_cache`.
fn matrix_cache_format() -> CacheFormat {
    match std::env::var("GLADE_TEST_CACHE_FMT").as_deref() {
        Ok("bin") | Ok("binary") => CacheFormat::Binary,
        _ => CacheFormat::Text,
    }
}

/// The golden distinct-query count for the matrix's memo mode.
fn golden_unique() -> usize {
    if matrix_memo() {
        GOLDEN_UNIQUE_ON
    } else {
        GOLDEN_UNIQUE_OFF
    }
}

/// The golden total-query count for the matrix's memo mode.
fn golden_total() -> usize {
    if matrix_memo() {
        GOLDEN_TOTAL_ON
    } else {
        GOLDEN_TOTAL_OFF
    }
}

#[test]
fn oracle_types_are_send_sync() {
    // Compile-time assertions: the whole oracle surface must be shareable
    // across the query engine's worker threads. (The internal QueryRunner
    // has the same assertion in its unit tests.)
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<FnOracle<fn(&[u8]) -> bool>>();
    assert_send_sync::<CachingOracle<FnOracle<fn(&[u8]) -> bool>>>();
    assert_send_sync::<ProcessOracle>();
    assert_send_sync::<Box<dyn Oracle>>();
    assert_send_sync::<&dyn Oracle>();

    // And `dyn Oracle` itself must be usable from a spawned thread.
    let oracle: Box<dyn Oracle> = Box::new(FnOracle::new(xml_like));
    std::thread::scope(|s| {
        let o = &oracle;
        s.spawn(move || assert!(o.accepts(b"<a>hi</a>")));
    });
}

/// Runs the full pipeline on the running example at a given worker count,
/// through the session API.
fn synthesize_with_workers(workers: usize) -> (String, SynthesisStats, usize) {
    let calls = AtomicUsize::new(0);
    let oracle = FnOracle::new(|i: &[u8]| {
        calls.fetch_add(1, Ordering::Relaxed);
        xml_like(i)
    });
    let mut session = GladeBuilder::new()
        .worker_threads(workers)
        .memoize_byte_classes(matrix_memo())
        .session(&oracle);
    let result = session.add_seeds(&[b"<a>hi</a>".to_vec()]).expect("valid seed");
    (grammar_to_text(&result.grammar), result.stats, calls.load(Ordering::Relaxed))
}

#[test]
fn parallel_and_sequential_paths_agree_exactly() {
    // The phase-2 merge checks and chargen probes fan out across workers;
    // the synthesized grammar (which encodes the union-find classes as its
    // nonterminal structure), the distinct-query count, and every merge
    // counter must be bit-identical to the sequential path.
    let (seq_grammar, seq_stats, seq_calls) = synthesize_with_workers(1);
    for workers in [2, 4, 8] {
        let (par_grammar, par_stats, par_calls) = synthesize_with_workers(workers);
        assert_eq!(par_grammar, seq_grammar, "grammar differs at {workers} workers");
        assert_eq!(
            par_stats.unique_queries, seq_stats.unique_queries,
            "unique queries differ at {workers} workers"
        );
        assert_eq!(par_stats.total_queries, seq_stats.total_queries);
        assert_eq!(par_stats.merge_pairs_tried, seq_stats.merge_pairs_tried);
        assert_eq!(par_stats.merges_accepted, seq_stats.merges_accepted);
        assert_eq!(par_stats.chars_generalized, seq_stats.chars_generalized);
        assert_eq!(par_stats.star_count, seq_stats.star_count);
        // Dedup means the raw oracle is hit exactly once per distinct query
        // regardless of worker count.
        assert_eq!(par_calls, seq_calls, "oracle call count differs at {workers} workers");
    }
}

#[test]
fn golden_query_counts_on_running_example() {
    // Pins the query-engine cost model for `<a>hi</a>` (Figure 2's seed),
    // now posed through the session API. A change here means the cache,
    // dedup, or batch construction changed: bump the numbers only with an
    // explanation in the commit message.
    let (_, stats, calls) = synthesize_with_workers(1);
    assert_eq!(stats.unique_queries, golden_unique());
    assert_eq!(stats.new_unique_queries, golden_unique(), "fresh session: all queries are new");
    assert_eq!(stats.total_queries, golden_total());
    assert_eq!(stats.merge_pairs_tried, 1);
    assert_eq!(stats.merges_accepted, 1);
    assert_eq!(stats.chars_generalized, 50);
    assert_eq!(calls, stats.unique_queries, "each distinct query hits the oracle once");
    if matrix_memo() {
        assert!(stats.probes_elided > 0, "the reduction layer elided nothing");
    } else {
        assert_eq!(stats.probes_elided, 0, "memo off must not elide");
        assert_eq!(stats.memo_hits, 0);
    }
}

#[test]
fn default_config_uses_available_parallelism_and_stays_correct() {
    // The default (no worker_threads call) resolves to the machine's
    // available parallelism; whatever that is, the result must match the
    // sequential reference. Both runs use the default memo mode (on), so
    // this also pins the defaults against the memo-on goldens.
    let oracle = FnOracle::new(xml_like);
    let auto = GladeBuilder::new().synthesize(&[b"<a>hi</a>".to_vec()], &oracle).expect("valid");
    let seq = GladeBuilder::new()
        .worker_threads(1)
        .synthesize(&[b"<a>hi</a>".to_vec()], &oracle)
        .expect("valid");
    assert_eq!(grammar_to_text(&auto.grammar), grammar_to_text(&seq.grammar));
    assert_eq!(auto.stats.unique_queries, seq.stats.unique_queries);
    assert_eq!(auto.stats.unique_queries, GOLDEN_UNIQUE_ON, "defaults memoize");
}

#[test]
fn concurrent_oracle_sees_consistent_snapshot() {
    // A shared CachingOracle under the engine: totals line up and the
    // verdicts stay deterministic.
    let oracle = CachingOracle::new(FnOracle::new(xml_like));
    let result = GladeBuilder::new()
        .worker_threads(8)
        .synthesize(&[b"<a>hi</a>".to_vec()], &oracle)
        .expect("valid");
    // The runner's own cache dedups, so the CachingOracle sees exactly the
    // distinct queries.
    assert_eq!(oracle.total_queries(), result.stats.unique_queries);
    assert_eq!(oracle.unique_queries(), result.stats.unique_queries);
}

#[test]
fn incremental_add_seeds_matches_fresh_multiseed_run() {
    // Worker-count determinism extended to the incremental path: feeding
    // seeds through two add_seeds calls must produce byte-identical
    // grammar text and the same distinct-query count as one fresh run on
    // the combined seed list — at every worker count.
    let seed1 = b"<a>hi</a>".to_vec();
    let seed2 = b"<a><a>x</a></a>".to_vec(); // not matched by seed1's regex
    for workers in [1, 4] {
        let oracle = FnOracle::new(xml_like);
        let fresh = GladeBuilder::new()
            .worker_threads(workers)
            .memoize_byte_classes(matrix_memo())
            .synthesize(&[seed1.clone(), seed2.clone()], &oracle)
            .expect("valid seeds");

        let mut session = GladeBuilder::new()
            .worker_threads(workers)
            .memoize_byte_classes(matrix_memo())
            .session(&oracle);
        let first = session.add_seeds(std::slice::from_ref(&seed1)).expect("valid seed");
        assert_eq!(first.stats.unique_queries, golden_unique(), "workers={workers}");
        let second = session.add_seeds(std::slice::from_ref(&seed2)).expect("valid seed");

        assert_eq!(
            grammar_to_text(&second.grammar),
            grammar_to_text(&fresh.grammar),
            "incremental grammar drifted at {workers} workers"
        );
        assert_eq!(
            second.stats.unique_queries, fresh.stats.unique_queries,
            "incremental distinct-query count drifted at {workers} workers"
        );
        assert_eq!(second.stats.seeds_used, fresh.stats.seeds_used);
        assert_eq!(second.stats.star_count, fresh.stats.star_count);
        assert_eq!(second.stats.merges_accepted, fresh.stats.merges_accepted);
    }
}

#[test]
fn skewed_latency_does_not_change_grammar_or_query_counts() {
    // Work-stealing dispatch exists for heterogeneous query latencies: one
    // pathological input must not idle the rest of the pool, and — more
    // importantly for correctness — scheduling must never leak into the
    // result. Per-query delay here varies 100× (2 µs to 200 µs, keyed off
    // a hash of the input so it is stable across runs and worker counts);
    // grammar bytes and the distinct-query count must be invariant across
    // 1/2/4/8 workers.
    fn skewed_delay_us(input: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in input {
            h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
        }
        2 + h % 199 // 2..=200 µs: a 100× spread
    }
    let oracle = FnOracle::new(|i: &[u8]| {
        std::thread::sleep(std::time::Duration::from_micros(skewed_delay_us(i)));
        xml_like(i)
    });
    let mut reference: Option<(String, usize, usize)> = None;
    for workers in [1usize, 2, 4, 8] {
        let result = GladeBuilder::new()
            .worker_threads(workers)
            .memoize_byte_classes(matrix_memo())
            .synthesize(&[b"<a>hi</a>".to_vec()], &oracle)
            .expect("valid seed");
        let row = (
            grammar_to_text(&result.grammar),
            result.stats.unique_queries,
            result.stats.total_queries,
        );
        match &reference {
            None => {
                assert_eq!(row.1, golden_unique());
                assert_eq!(row.2, golden_total());
                reference = Some(row);
            }
            Some(expected) => {
                assert_eq!(&row, expected, "skewed-latency drift at {workers} workers");
            }
        }
    }
}

/// Source of a protocol worker implemented *independently* of
/// `glade_core::serve_oracle_worker` — compiling and driving it is a wire-
/// format compatibility test, not a round-trip through our own helper.
/// Language: nonempty strings of `x`.
///
/// Flags exercising the protocol's failure paths:
/// * `--v1-only` — never acknowledge the v2 negotiation probe (the probe
///   is answered like any other query), pinning the legacy single-query
///   wire format end to end;
/// * `--crash-after N` — exit abruptly after answering N queries; in v2
///   mode a mid-frame hit writes the *partial* verdict run first, so the
///   oracle must recover from a torn batch response;
/// * `--garbage-after N` — answer every verdict after the Nth as an
///   illegal byte (`0x7f`): the oracle must treat it as a crash, never as
///   a verdict;
/// * `--hang-after N` — answer N queries and then go silent *without*
///   exiting (in v2 mode the partial verdicts of the current frame are
///   flushed first, so the hang lands mid-batch): the pipe stays open, so
///   only a query deadline can unwedge the oracle;
/// * `--stall-ms M` — slow-loris: trickle each verdict byte after an M ms
///   pause. Slow but healthy — a per-verdict deadline must tolerate it
///   even when the whole batch takes longer than the deadline;
/// * the input `CRASH!` makes the worker exit *without* answering (in v2
///   mode: after flushing the partial verdicts of the frame so far) — a
///   poison input that defeats every retry.
const TEST_WORKER_SOURCE: &str = r#"
use std::io::{Read, Write};

const PROBE: &[u8] = b"\x00\x00glade-wire-v2?";
const ACK: u8 = 0x02;

fn flag(args: &[String], name: &str) -> Option<usize> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).and_then(|v| v.parse().ok())
}

fn hang_forever() -> ! {
    // Stay alive without speaking: the pipe never reaches EOF, so only a
    // deadline on the oracle side can detect this state.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let v1_only = args.iter().any(|a| a == "--v1-only");
    let crash_after = flag(&args, "--crash-after");
    let garbage_after = flag(&args, "--garbage-after");
    let hang_after = flag(&args, "--hang-after");
    let stall_ms = flag(&args, "--stall-ms");
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = stdin.lock();
    let mut output = stdout.lock();
    let mut buf = Vec::new();
    let mut answered = 0usize;
    let mut v2 = false;
    let mut first_frame = true;
    let verdict_byte = |accept: bool, answered: usize| -> u8 {
        if garbage_after.is_some_and(|g| answered > g) { 0x7f } else { u8::from(accept) }
    };
    loop {
        let mut prefix = [0u8; 4];
        if input.read_exact(&mut prefix).is_err() {
            return; // clean EOF between frames
        }
        let head = u32::from_le_bytes(prefix) as usize;
        if !v2 {
            // v1 frame: `head` is the query's byte length.
            buf.clear();
            buf.resize(head, 0);
            if input.read_exact(&mut buf).is_err() {
                return;
            }
            // Per the spec, the probe is special on the first frame only:
            // the oracle negotiates right after spawn, so a later query
            // equal to the probe is just a query.
            if first_frame && !v1_only && buf == PROBE {
                if output.write_all(&[ACK]).is_err() || output.flush().is_err() {
                    return;
                }
                v2 = true;
                continue;
            }
            first_frame = false;
            if buf == b"CRASH!" {
                std::process::exit(3);
            }
            if hang_after.is_some_and(|h| answered >= h) {
                hang_forever();
            }
            let accept = !buf.is_empty() && buf.iter().all(|&b| b == b'x');
            answered += 1;
            if let Some(ms) = stall_ms {
                std::thread::sleep(std::time::Duration::from_millis(ms as u64));
            }
            if output.write_all(&[verdict_byte(accept, answered)]).is_err() {
                return;
            }
            let _ = output.flush();
            if crash_after == Some(answered) {
                std::process::exit(42);
            }
        } else {
            // v2 frame: `head` is the query count.
            if head == 0 || head > 1 << 16 {
                std::process::exit(64); // malformed frame: fail closed
            }
            let mut verdicts: Vec<u8> = Vec::with_capacity(head);
            let mut die = None;
            for _ in 0..head {
                let mut lp = [0u8; 4];
                if input.read_exact(&mut lp).is_err() {
                    std::process::exit(65); // truncated frame
                }
                let len = u32::from_le_bytes(lp) as usize;
                if len > 1 << 30 {
                    std::process::exit(66); // oversized frame
                }
                buf.clear();
                buf.resize(len, 0);
                if input.read_exact(&mut buf).is_err() {
                    std::process::exit(65);
                }
                if buf == b"CRASH!" {
                    die = Some(3);
                    break;
                }
                if hang_after.is_some_and(|h| answered >= h) {
                    // A mid-frame hang still flushes the verdicts so far:
                    // the oracle sees a torn batch that then goes silent.
                    let _ = output.write_all(&verdicts);
                    let _ = output.flush();
                    hang_forever();
                }
                let accept = !buf.is_empty() && buf.iter().all(|&b| b == b'x');
                answered += 1;
                verdicts.push(verdict_byte(accept, answered));
                if crash_after == Some(answered) {
                    die = Some(42);
                    break;
                }
            }
            // A mid-frame death still flushes the verdicts computed so
            // far: the oracle must survive a torn (partial) response.
            if let Some(ms) = stall_ms {
                // Slow-loris: one flushed byte per pause, so every verdict
                // arrives as its own read on the oracle side.
                for &v in &verdicts {
                    std::thread::sleep(std::time::Duration::from_millis(ms as u64));
                    if output.write_all(&[v]).is_err() || output.flush().is_err() {
                        return;
                    }
                }
            } else if output.write_all(&verdicts).is_err() || output.flush().is_err() {
                return;
            }
            if let Some(code) = die {
                std::process::exit(code);
            }
        }
    }
}
"#;

/// Compiles the test worker once per test process. Returns `None` (and the
/// dependent tests skip) when no `rustc` is available on PATH.
fn test_worker_bin() -> Option<&'static str> {
    static BIN: OnceLock<Option<String>> = OnceLock::new();
    BIN.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("glade-test-worker-{}", std::process::id()));
        std::fs::create_dir_all(&dir).ok()?;
        let src = dir.join("worker.rs");
        let bin = dir.join(if cfg!(windows) { "worker.exe" } else { "worker" });
        std::fs::write(&src, TEST_WORKER_SOURCE).ok()?;
        let status = std::process::Command::new("rustc")
            .arg("--edition=2021")
            .arg("-O")
            .arg(&src)
            .arg("-o")
            .arg(&bin)
            .status()
            .ok()?;
        if !status.success() {
            return None;
        }
        Some(bin.to_str()?.to_owned())
    })
    .as_deref()
}

/// Per-test timeout guard: the pooled protocol tests drive nonblocking
/// pipes against real child processes, and a dispatcher bug would wedge
/// them (and the whole CI job) in a `poll(2)` that never wakes. The
/// watchdog turns "hung" into "failed fast": if the owning test has not
/// disarmed it in time, the process exits with a diagnostic.
/// `GLADE_TEST_TIMEOUT_SECS` tunes the limit (default 120 s).
struct Watchdog {
    done: Arc<std::sync::atomic::AtomicBool>,
}

impl Watchdog {
    fn arm(name: &'static str) -> Self {
        let secs = std::env::var("GLADE_TEST_TIMEOUT_SECS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(120u64);
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = done.clone();
        std::thread::spawn(move || {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(secs);
            while std::time::Instant::now() < deadline {
                if flag.load(Ordering::Relaxed) {
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
            eprintln!("watchdog: `{name}` still running after {secs}s — a protocol pipe is hung");
            std::process::exit(99);
        });
        Watchdog { done }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.done.store(true, Ordering::Relaxed);
    }
}

/// Pool sizes for the protocol matrix; `GLADE_TEST_POOL_SIZE` pins one
/// (the CI matrix sweeps it).
fn matrix_pool_sizes() -> Vec<usize> {
    match std::env::var("GLADE_TEST_POOL_SIZE").ok().and_then(|v| v.parse().ok()) {
        Some(n) => vec![n],
        None => vec![1, 2, 8],
    }
}

/// Wire-version cap for the protocol matrix; `GLADE_TEST_WIRE=v1` pins the
/// legacy single-query framing (the CI matrix sweeps it).
fn matrix_wire_cap() -> u8 {
    match std::env::var("GLADE_TEST_WIRE").as_deref() {
        Ok("v1") | Ok("1") => 1,
        _ => 2,
    }
}

#[test]
fn pooled_oracle_protocol_round_trip() {
    let _guard = Watchdog::arm("pooled_oracle_protocol_round_trip");
    let Some(bin) = test_worker_bin() else {
        eprintln!("skipping: rustc unavailable, cannot build the protocol worker");
        return;
    };
    let pool = PooledProcessOracle::new(bin).pool_size(3).max_wire_version(matrix_wire_cap());
    // Single-threaded sanity, including the empty input (a zero-length
    // frame) and binary bytes.
    assert!(pool.accepts(b"x"));
    assert!(pool.accepts(b"xxxx"));
    assert!(!pool.accepts(b""));
    assert!(!pool.accepts(b"xyx"));
    assert!(!pool.accepts(b"\x00\xff"));
    // Concurrent queries share the pool without crosstalk.
    std::thread::scope(|s| {
        for t in 0..6 {
            let pool = &pool;
            s.spawn(move || {
                for i in 0..25usize {
                    let input = vec![b'x'; (t + i) % 7];
                    assert_eq!(pool.accepts(&input), !input.is_empty(), "thread {t} iter {i}");
                }
            });
        }
    });
    assert_eq!(pool.failure_count(), 0);
    assert_eq!(pool.respawn_count(), 0, "healthy workers are never respawned");
}

#[test]
fn pooled_oracle_recovers_from_worker_crashes() {
    let _guard = Watchdog::arm("pooled_oracle_recovers_from_worker_crashes");
    let Some(bin) = test_worker_bin() else {
        eprintln!("skipping: rustc unavailable, cannot build the protocol worker");
        return;
    };
    // The worker dies after every 3 answers; with a single slot the pool
    // must keep reaping, respawning, and retrying without ever returning a
    // wrong verdict or counting a failure.
    let pool = PooledProcessOracle::new(bin).arg("--crash-after").arg("3").pool_size(1);
    for i in 0..20usize {
        let input = vec![b'x'; i % 5];
        assert_eq!(pool.accepts(&input), !input.is_empty(), "iter {i}");
    }
    assert!(pool.respawn_count() >= 5, "respawns: {}", pool.respawn_count());
    assert_eq!(pool.failure_count(), 0, "every crash was recovered");
}

#[test]
fn pooled_oracle_poison_input_degrades_and_recovers() {
    let _guard = Watchdog::arm("pooled_oracle_poison_input_degrades_and_recovers");
    let Some(bin) = test_worker_bin() else {
        eprintln!("skipping: rustc unavailable, cannot build the protocol worker");
        return;
    };
    let pool = PooledProcessOracle::new(bin).pool_size(1);
    assert!(pool.accepts(b"xx"));
    // The poison input kills the worker *and* its respawned replacement
    // before any answer: the query degrades to false and is counted.
    assert!(!pool.accepts(b"CRASH!"));
    assert_eq!(pool.failure_count(), 1);
    assert!(pool.respawn_count() >= 1);
    // The pool is still serviceable afterwards.
    assert!(pool.accepts(b"xxx"));
    assert!(!pool.accepts(b"y"));
    assert_eq!(pool.failure_count(), 1, "healthy queries add no failures");
}

/// Reference predicate of the rustc-compiled test worker's language.
fn x_language(input: &[u8]) -> bool {
    !input.is_empty() && input.iter().all(|&b| b == b'x')
}

/// A deterministic mixed workload for the batched-dispatch tests.
fn x_workload(count: usize, offset: usize) -> Vec<Vec<u8>> {
    (0..count)
        .map(|i| {
            let n = offset + i;
            match n % 4 {
                0 => vec![b'x'; 1 + n % 7],
                1 => Vec::new(),
                2 => {
                    let mut v = vec![b'x'; 1 + n % 5];
                    v.push(b'y');
                    v
                }
                _ => vec![b'x'; 1 + n % 11],
            }
        })
        .collect()
}

#[test]
fn batched_dispatch_agrees_with_per_query_path_across_matrix() {
    // The event-driven dispatcher (poll-multiplexed pipes, batched v2
    // frames or strict v1 request–response) must produce exactly the
    // verdicts of the blocking per-query path, at every pool size, wire
    // version, and frame batch size the matrix requests.
    let _guard = Watchdog::arm("batched_dispatch_agrees_with_per_query_path_across_matrix");
    let Some(bin) = test_worker_bin() else {
        eprintln!("skipping: rustc unavailable, cannot build the protocol worker");
        return;
    };
    let inputs = x_workload(300, 0);
    let refs: Vec<&[u8]> = inputs.iter().map(Vec::as_slice).collect();
    let expected: Vec<Option<bool>> = inputs.iter().map(|i| Some(x_language(i))).collect();
    for pool_size in matrix_pool_sizes() {
        for frame_batch in [1usize, 7, 64] {
            let pool = PooledProcessOracle::new(bin)
                .pool_size(pool_size)
                .frame_batch(frame_batch)
                .max_wire_version(matrix_wire_cap());
            let verdicts = pool.accepts_batch_checked(&refs);
            assert_eq!(
                verdicts, expected,
                "verdicts drifted at pool={pool_size} frame_batch={frame_batch}"
            );
            assert_eq!(pool.failure_count(), 0, "pool={pool_size} frame_batch={frame_batch}");
            assert_eq!(pool.respawn_count(), 0, "healthy workers were respawned");
        }
    }
}

#[test]
fn v1_only_worker_pins_version_negotiation() {
    // A worker that never acknowledges the upgrade probe must be driven
    // with legacy single-query frames — including by the batched
    // dispatcher — and the probe's discarded verdict must never surface.
    let _guard = Watchdog::arm("v1_only_worker_pins_version_negotiation");
    let Some(bin) = test_worker_bin() else {
        eprintln!("skipping: rustc unavailable, cannot build the protocol worker");
        return;
    };
    let pool = PooledProcessOracle::new(bin).arg("--v1-only").pool_size(2);
    assert!(pool.accepts(b"x"));
    assert!(!pool.accepts(b""));
    let inputs = x_workload(120, 31);
    let refs: Vec<&[u8]> = inputs.iter().map(Vec::as_slice).collect();
    let expected: Vec<Option<bool>> = inputs.iter().map(|i| Some(x_language(i))).collect();
    assert_eq!(pool.accepts_batch_checked(&refs), expected);
    assert_eq!(pool.failure_count(), 0);
    assert_eq!(pool.respawn_count(), 0, "negotiating down is not a crash");

    // And capping the oracle to v1 against a v2-capable worker speaks
    // byte-identical legacy frames (no probe is ever sent).
    let capped = PooledProcessOracle::new(bin).pool_size(2).max_wire_version(1);
    assert_eq!(capped.accepts_batch_checked(&refs), expected);
    assert_eq!(capped.failure_count(), 0);
}

#[test]
fn crash_mid_batch_under_concurrent_load_recovers_every_query() {
    // Workers die after every 23 answers — with 64-query v2 frames the
    // death lands mid-frame and the worker flushes a *partial* verdict
    // run first (see TEST_WORKER_SOURCE). Four threads hammer batched
    // dispatch concurrently; every query must still get its true verdict
    // (requeue + fresh-worker retry), with zero counted failures.
    let _guard = Watchdog::arm("crash_mid_batch_under_concurrent_load_recovers_every_query");
    let Some(bin) = test_worker_bin() else {
        eprintln!("skipping: rustc unavailable, cannot build the protocol worker");
        return;
    };
    let pool =
        PooledProcessOracle::new(bin).arg("--crash-after").arg("23").pool_size(2).frame_batch(64);
    std::thread::scope(|s| {
        for t in 0..4usize {
            let pool = &pool;
            s.spawn(move || {
                for round in 0..3usize {
                    let inputs = x_workload(150, 1000 * t + 17 * round);
                    let refs: Vec<&[u8]> = inputs.iter().map(Vec::as_slice).collect();
                    let expected: Vec<Option<bool>> =
                        inputs.iter().map(|i| Some(x_language(i))).collect();
                    assert_eq!(
                        pool.accepts_batch_checked(&refs),
                        expected,
                        "thread {t} round {round}"
                    );
                }
            });
        }
    });
    assert_eq!(pool.failure_count(), 0, "every crashed query was recovered");
    assert!(pool.respawn_count() >= 10, "respawns: {}", pool.respawn_count());
}

#[test]
fn garbage_verdict_bytes_are_crashes_not_verdicts() {
    // After 20 good answers the worker answers 0x7f forever: the oracle
    // must treat the illegal byte as a crash and re-pose the query on a
    // fresh worker — a wrong verdict must never surface, and because a
    // fresh worker always answers its first queries correctly, no
    // failures are counted either.
    let _guard = Watchdog::arm("garbage_verdict_bytes_are_crashes_not_verdicts");
    let Some(bin) = test_worker_bin() else {
        eprintln!("skipping: rustc unavailable, cannot build the protocol worker");
        return;
    };
    let pool =
        PooledProcessOracle::new(bin).arg("--garbage-after").arg("20").pool_size(2).frame_batch(16);
    let inputs = x_workload(200, 7);
    let refs: Vec<&[u8]> = inputs.iter().map(Vec::as_slice).collect();
    let expected: Vec<Option<bool>> = inputs.iter().map(|i| Some(x_language(i))).collect();
    assert_eq!(pool.accepts_batch_checked(&refs), expected, "a garbage byte leaked a verdict");
    assert_eq!(pool.failure_count(), 0);
    assert!(pool.respawn_count() >= 5, "respawns: {}", pool.respawn_count());
}

#[test]
fn poison_query_inside_a_batch_degrades_only_itself() {
    // One unanswerable poison query rides along in a batch: it (and only
    // it) degrades to a counted failure after defeating the batch retry
    // and the per-query fallback; every sibling query is answered.
    let _guard = Watchdog::arm("poison_query_inside_a_batch_degrades_only_itself");
    let Some(bin) = test_worker_bin() else {
        eprintln!("skipping: rustc unavailable, cannot build the protocol worker");
        return;
    };
    let pool = PooledProcessOracle::new(bin).pool_size(2).frame_batch(8);
    let mut inputs = x_workload(60, 3);
    inputs[37] = b"CRASH!".to_vec();
    let refs: Vec<&[u8]> = inputs.iter().map(Vec::as_slice).collect();
    let verdicts = pool.accepts_batch_checked(&refs);
    for (i, input) in inputs.iter().enumerate() {
        if i == 37 {
            assert_eq!(verdicts[i], None, "the poison query has no verdict");
        } else {
            assert_eq!(verdicts[i], Some(x_language(input)), "sibling {i} was dragged down");
        }
    }
    assert_eq!(pool.failure_count(), 1, "exactly the poison query is a failure");
    assert!(pool.respawn_count() >= 2);
}

#[test]
fn hung_worker_is_killed_at_the_deadline_and_recovered() {
    // `--hang-after 2`: each worker answers two queries and then goes
    // silent without exiting, so the pipe never reaches EOF. Without a
    // deadline the blocking per-query path would wedge forever; with one,
    // the hung worker is killed at the deadline, the abandoned query is
    // counted in `timed_out_count`, and the retry lands on a fresh worker
    // that answers it — no verdict is ever lost or wrong.
    let _guard = Watchdog::arm("hung_worker_is_killed_at_the_deadline_and_recovered");
    let Some(bin) = test_worker_bin() else {
        eprintln!("skipping: rustc unavailable, cannot build the protocol worker");
        return;
    };
    let pool = PooledProcessOracle::new(bin)
        .arg("--hang-after")
        .arg("2")
        .pool_size(1)
        .query_timeout(Duration::from_millis(250));
    for i in 0..8usize {
        let input = vec![b'x'; 1 + i % 3];
        assert!(pool.accepts(&input), "iter {i}");
    }
    assert!(pool.timed_out_count() >= 2, "hangs detected: {}", pool.timed_out_count());
    assert_eq!(pool.failure_count(), 0, "every hung query was recovered on retry");
    assert!(pool.respawn_count() >= 2, "respawns: {}", pool.respawn_count());
}

#[test]
fn slow_loris_verdicts_within_the_deadline_stay_healthy() {
    // `--stall-ms 20` trickles each verdict as its own flushed byte ~20 ms
    // apart, so a 16-query frame takes ~320 ms end to end — well past the
    // 150 ms deadline if it were measured per frame. The deadline is per
    // verdict *progress*: as long as each byte lands inside it the worker
    // is slow but healthy, and nothing may be killed, retried, or counted.
    let _guard = Watchdog::arm("slow_loris_verdicts_within_the_deadline_stay_healthy");
    let Some(bin) = test_worker_bin() else {
        eprintln!("skipping: rustc unavailable, cannot build the protocol worker");
        return;
    };
    let inputs = x_workload(48, 5);
    let refs: Vec<&[u8]> = inputs.iter().map(Vec::as_slice).collect();
    let expected: Vec<Option<bool>> = inputs.iter().map(|i| Some(x_language(i))).collect();
    let pool = PooledProcessOracle::new(bin)
        .arg("--stall-ms")
        .arg("20")
        .pool_size(2)
        .frame_batch(16)
        .query_timeout(Duration::from_millis(150));
    assert_eq!(pool.accepts_batch_checked(&refs), expected);
    assert_eq!(pool.timed_out_count(), 0, "a slow-but-healthy worker was declared hung");
    assert_eq!(pool.respawn_count(), 0, "a slow-but-healthy worker was killed");
    assert_eq!(pool.failure_count(), 0);
}

#[test]
fn hang_mid_v2_frame_under_concurrent_load_recovers_every_query() {
    // Workers answer 13 queries and then hang mid-v2-frame, after flushing
    // a torn partial verdict run (see TEST_WORKER_SOURCE). Concurrent
    // batched dispatch must detect each hang at the deadline, kill the
    // worker, requeue the unanswered tail, and replay it on fresh workers:
    // every query still gets its true verdict and none is a failure.
    let _guard = Watchdog::arm("hang_mid_v2_frame_under_concurrent_load_recovers_every_query");
    let Some(bin) = test_worker_bin() else {
        eprintln!("skipping: rustc unavailable, cannot build the protocol worker");
        return;
    };
    let pool = PooledProcessOracle::new(bin)
        .arg("--hang-after")
        .arg("13")
        .pool_size(2)
        .frame_batch(16)
        .query_timeout(Duration::from_millis(250));
    std::thread::scope(|s| {
        for t in 0..3usize {
            let pool = &pool;
            s.spawn(move || {
                for round in 0..2usize {
                    let inputs = x_workload(40, 500 * t + 13 * round);
                    let refs: Vec<&[u8]> = inputs.iter().map(Vec::as_slice).collect();
                    let expected: Vec<Option<bool>> =
                        inputs.iter().map(|i| Some(x_language(i))).collect();
                    assert_eq!(
                        pool.accepts_batch_checked(&refs),
                        expected,
                        "thread {t} round {round}"
                    );
                }
            });
        }
    });
    assert!(pool.timed_out_count() >= 1, "no mid-frame hang was detected");
    assert_eq!(pool.failure_count(), 0, "every hung query was replayed successfully");
    assert!(pool.respawn_count() >= 2, "respawns: {}", pool.respawn_count());
}

#[test]
fn full_synthesis_with_hanging_workers_stays_exact_and_reports_hangs() {
    // The tentpole acceptance invariant for deadlines: a pooled synthesis
    // run whose workers keep hanging completes (the watchdog turns a wedge
    // into a fast failure), produces the exact grammar bytes and query
    // counts of the in-process reference, counts every hang in
    // `timed_out_queries`, and surfaces them as WorkerHung events.
    let _guard = Watchdog::arm("full_synthesis_with_hanging_workers_stays_exact_and_reports_hangs");
    let Some(bin) = test_worker_bin() else {
        eprintln!("skipping: rustc unavailable, cannot build the protocol worker");
        return;
    };
    let seeds = vec![b"xx".to_vec()];
    let reference = GladeBuilder::new()
        .memoize_byte_classes(matrix_memo())
        .synthesize(&seeds, &FnOracle::new(x_language))
        .expect("valid seed");
    let pool = PooledProcessOracle::new(bin).arg("--hang-after").arg("29").pool_size(2);
    let log = Arc::new(EventLog::new());
    let result = GladeBuilder::new()
        .observer(log.clone())
        .memoize_byte_classes(matrix_memo())
        .oracle_timeout(Duration::from_millis(250))
        .synthesize(&seeds, &pool)
        .expect("valid seed");
    assert_eq!(
        grammar_to_text(&result.grammar),
        grammar_to_text(&reference.grammar),
        "hangs leaked into the grammar"
    );
    assert_eq!(result.stats.unique_queries, reference.stats.unique_queries);
    assert_eq!(result.stats.total_queries, reference.stats.total_queries);
    assert_eq!(result.stats.oracle_failures, 0, "every hang was recovered");
    assert!(result.stats.timed_out_queries > 0, "the workload outlives the hang threshold");
    assert_eq!(
        result.stats.timed_out_queries,
        pool.timed_out_count(),
        "session stats drifted from the oracle's own accounting"
    );
    let reported: usize = log
        .events()
        .iter()
        .filter_map(|e| match e {
            SynthEvent::WorkerHung { new_timeouts, .. } => Some(*new_timeouts),
            _ => None,
        })
        .sum();
    assert_eq!(reported, result.stats.timed_out_queries, "events account for every hang");
}

#[test]
fn full_synthesis_through_crashing_pool_matches_in_process_run() {
    // The acceptance invariant of the crash-recovery machinery: a full
    // synthesis run over a pool whose workers keep dying produces the
    // exact grammar bytes, unique-query count, and failure accounting of
    // the in-process oracle — at every matrix pool size.
    let _guard = Watchdog::arm("full_synthesis_through_crashing_pool_matches_in_process_run");
    let Some(bin) = test_worker_bin() else {
        eprintln!("skipping: rustc unavailable, cannot build the protocol worker");
        return;
    };
    let seeds = vec![b"xx".to_vec()];
    let reference_oracle = FnOracle::new(x_language);
    let reference = GladeBuilder::new()
        .memoize_byte_classes(matrix_memo())
        .synthesize(&seeds, &reference_oracle)
        .expect("valid seed");
    for pool_size in matrix_pool_sizes() {
        let pool = PooledProcessOracle::new(bin)
            .arg("--crash-after")
            .arg("19")
            .pool_size(pool_size)
            .max_wire_version(matrix_wire_cap());
        let pooled = GladeBuilder::new()
            .memoize_byte_classes(matrix_memo())
            .synthesize(&seeds, &pool)
            .expect("valid seed");
        assert_eq!(
            grammar_to_text(&pooled.grammar),
            grammar_to_text(&reference.grammar),
            "grammar drifted through the crashing pool at pool_size={pool_size}"
        );
        assert_eq!(pooled.stats.unique_queries, reference.stats.unique_queries);
        assert_eq!(pooled.stats.total_queries, reference.stats.total_queries);
        assert_eq!(pooled.stats.oracle_failures, 0, "every crash was recovered");
        assert!(pool.respawn_count() > 0, "the workload outlives single workers");
    }
}

#[test]
fn oracle_execution_failures_are_counted_and_surfaced() {
    // An oracle that cannot execute some fraction of its queries: the run
    // completes (fail closed, seed preserved) but reports the failures in
    // the stats and as OracleFailures events — the satellite fix for
    // ProcessOracle's old silent `false` on spawn errors.
    struct FailingOracle {
        failures: AtomicUsize,
    }
    impl Oracle for FailingOracle {
        fn accepts(&self, input: &[u8]) -> bool {
            self.accepts_checked(input).unwrap_or(false)
        }
        fn accepts_checked(&self, input: &[u8]) -> Option<bool> {
            if input.contains(&b'~') {
                // Simulated execution failure: no verdict obtainable.
                self.failures.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Some(xml_like(input))
        }
        fn failure_count(&self) -> usize {
            self.failures.load(Ordering::Relaxed)
        }
    }
    let oracle = FailingOracle { failures: AtomicUsize::new(0) };
    let log = Arc::new(EventLog::new());
    // Memo off, deliberately: the `unique + failures` identity below
    // requires every planned check to be posed exactly once, but failed
    // executions are (correctly) never cached, so the staged wave planner
    // may re-pose a failed string in a later wave and count its failure
    // twice. The no-cache-poisoning guarantee itself is mode-independent.
    let mut session =
        GladeBuilder::new().observer(log.clone()).memoize_byte_classes(false).session(&oracle);
    let result = session.add_seeds(&[b"<a>hi</a>".to_vec()]).expect("valid seed");
    assert!(result.stats.oracle_failures > 0, "chargen probes contain '~'");
    assert_eq!(result.stats.oracle_failures, oracle.failure_count());
    assert!(glade_grammar::Earley::new(&result.grammar).accepts(b"<a>hi</a>"));
    // Degraded answers must never be cached: a snapshot of this session
    // would otherwise poison every warm-started run with false rejects.
    assert_eq!(
        result.stats.unique_queries + result.stats.oracle_failures,
        GOLDEN_UNIQUE_OFF,
        "failed executions leaked into the cache"
    );
    let persisted = glade_core::cache_from_text(&session.export_cache()).expect("snapshot parses");
    assert!(
        persisted.iter().all(|(query, _)| !query.contains(&b'~')),
        "a failed '~' query was persisted into the snapshot"
    );
    let reported: usize = log
        .events()
        .iter()
        .filter_map(|e| match e {
            SynthEvent::OracleFailures { new_failures, .. } => Some(*new_failures),
            _ => None,
        })
        .sum();
    assert_eq!(reported, result.stats.oracle_failures, "events account for every failure");
}

#[test]
fn cancellation_mid_phase_still_yields_seed_accepting_grammar() {
    // Cancel deterministically after a fixed number of oracle calls —
    // deep inside character generalization for this seed — at several
    // trip points. Whatever was in flight, the returned grammar must
    // contain every seed (the fail-closed degradation path).
    for trip_at in [10, 100, 700] {
        let token = CancelToken::new();
        let calls = AtomicUsize::new(0);
        let trip_token = token.clone();
        let oracle = FnOracle::new(move |i: &[u8]| {
            if calls.fetch_add(1, Ordering::Relaxed) + 1 == trip_at {
                trip_token.cancel();
            }
            xml_like(i)
        });
        let mut session = GladeBuilder::new()
            .worker_threads(1)
            .memoize_byte_classes(matrix_memo())
            .cancel_token(token)
            .session(&oracle);
        let result = session.add_seeds(&[b"<a>hi</a>".to_vec()]).expect("valid seed");
        assert!(result.stats.cancelled, "trip_at={trip_at}");
        assert!(
            glade_grammar::Earley::new(&result.grammar).accepts(b"<a>hi</a>"),
            "seed lost after cancelling at {trip_at} calls"
        );
        assert!(
            result.stats.unique_queries < golden_unique(),
            "cancellation at {trip_at} did not shorten the run"
        );
    }
}

#[test]
fn cache_snapshot_roundtrip_answers_full_run_with_zero_new_queries() {
    // The acceptance invariant for persistent caches: save → load → re-run
    // answers the entire running-example run from the snapshot. The
    // snapshot format comes from the matrix (`GLADE_TEST_CACHE_FMT`), so
    // CI proves the invariant for text and binary alike.
    let format = matrix_cache_format();
    let oracle = FnOracle::new(xml_like);
    let mut warm = GladeBuilder::new().memoize_byte_classes(matrix_memo()).session(&oracle);
    let first = warm.add_seeds(&[b"<a>hi</a>".to_vec()]).expect("valid seed");
    assert_eq!(first.stats.unique_queries, golden_unique());

    let path = std::env::temp_dir().join(format!("glade-cache-test-{}.txt", std::process::id()));
    warm.save_cache_as(&path, format).expect("snapshot written");
    let on_disk = std::fs::read(&path).expect("snapshot readable");
    assert_eq!(
        is_binary_snapshot(&on_disk),
        format == CacheFormat::Binary,
        "the snapshot on disk must be in the matrix's format"
    );

    // The cold session's oracle counts calls: it must never be consulted.
    let calls = AtomicUsize::new(0);
    let counting = FnOracle::new(|i: &[u8]| {
        calls.fetch_add(1, Ordering::Relaxed);
        xml_like(i)
    });
    let mut cold = GladeBuilder::new().memoize_byte_classes(matrix_memo()).session(&counting);
    let loaded = cold.load_cache(&path).expect("snapshot read");
    assert_eq!(loaded, golden_unique());
    let second = cold.add_seeds(&[b"<a>hi</a>".to_vec()]).expect("valid seed");
    let _ = std::fs::remove_file(&path);

    assert_eq!(second.stats.new_unique_queries, 0, "warm re-run paid oracle calls");
    assert_eq!(calls.load(Ordering::Relaxed), 0, "oracle consulted despite warm cache");
    assert_eq!(second.stats.unique_queries, golden_unique());
    assert_eq!(grammar_to_text(&second.grammar), grammar_to_text(&first.grammar));
}

#[test]
fn memo_on_and_off_agree_on_grammar_bytes_across_worker_counts() {
    // The tentpole exactness invariant, end to end: every elision the
    // query-reduction layer makes is provably redundant, so the grammar is
    // byte-identical with the layer on or off — at every worker count, and
    // through incremental add_seeds — while the memo-on run poses strictly
    // fewer distinct queries.
    let seed1 = b"<a>hi</a>".to_vec();
    let seed2 = b"<a><a>x</a></a>".to_vec();
    let seeds = vec![seed1.clone(), seed2.clone()];
    for workers in [1usize, 4] {
        let oracle = FnOracle::new(xml_like);
        let off = GladeBuilder::new()
            .worker_threads(workers)
            .memoize_byte_classes(false)
            .synthesize(&seeds, &oracle)
            .expect("valid seeds");
        let on = GladeBuilder::new()
            .worker_threads(workers)
            .memoize_byte_classes(true)
            .synthesize(&seeds, &oracle)
            .expect("valid seeds");
        assert_eq!(
            grammar_to_text(&on.grammar),
            grammar_to_text(&off.grammar),
            "an elision changed the grammar at {workers} workers"
        );
        assert_eq!(on.stats.merges_accepted, off.stats.merges_accepted);
        assert_eq!(on.stats.chars_generalized, off.stats.chars_generalized);
        assert!(
            on.stats.unique_queries < off.stats.unique_queries,
            "memo on posed no fewer distinct queries ({} vs {}) at {workers} workers",
            on.stats.unique_queries,
            off.stats.unique_queries
        );
        assert!(on.stats.total_queries < off.stats.total_queries);
        assert!(on.stats.probes_elided > 0);
        assert_eq!(off.stats.probes_elided, 0);

        // Incremental memo-on sessions converge to the same bytes too.
        let mut session =
            GladeBuilder::new().worker_threads(workers).memoize_byte_classes(true).session(&oracle);
        session.add_seeds(std::slice::from_ref(&seed1)).expect("valid seed");
        let incremental = session.add_seeds(std::slice::from_ref(&seed2)).expect("valid seed");
        assert_eq!(
            grammar_to_text(&incremental.grammar),
            grammar_to_text(&off.grammar),
            "incremental memo-on grammar drifted at {workers} workers"
        );
    }
}

#[test]
fn per_language_query_pins_with_memo_on_and_off() {
    // Pins the query-reduction layer's effect on every Section 8.2
    // language (plus the toy running-example language): distinct-query
    // counts in both modes, and byte-identical grammars between them.
    // Seeds are sampled from the handwritten grammars exactly as the
    // bench's pipeline experiment samples them (seed 17), just fewer of
    // them so the debug-mode suite stays fast. A drift here means the
    // planner's cost model changed: re-measure both modes together.
    let pins: &[(&str, usize, usize)] = &[
        ("url", 19_842, 13_280),
        ("grep", 5_483, 4_524),
        ("lisp", 3_028, 2_278),
        ("xml", 707, 707), // xml's distinct strings survive; only re-poses are elided
        ("toy-xml", 1_594, 923),
    ];
    let mut languages = section82_languages();
    languages.push(toy_xml());
    for language in &languages {
        let &(_, unique_off, unique_on) =
            pins.iter().find(|(n, _, _)| *n == language.name()).expect("language is pinned");
        let mut rng = StdRng::seed_from_u64(17);
        let seeds = sample_seeds(language, 4, &mut rng);
        let mut grammars = Vec::new();
        for (memo, expected) in [(false, unique_off), (true, unique_on)] {
            let oracle = language.oracle();
            let result = GladeBuilder::new()
                .max_queries(200_000)
                .memoize_byte_classes(memo)
                .synthesize(&seeds, &oracle)
                .expect("sampled seeds are members");
            assert!(!result.stats.budget_exhausted, "{} exhausted its budget", language.name());
            assert_eq!(
                result.stats.unique_queries,
                expected,
                "{} distinct queries drifted (memo={memo})",
                language.name()
            );
            assert!(
                result.stats.total_queries >= result.stats.unique_queries,
                "{} total < unique",
                language.name()
            );
            grammars.push(grammar_to_text(&result.grammar));
        }
        assert_eq!(
            grammars[1],
            grammars[0],
            "{} grammar differs between memo modes",
            language.name()
        );
    }
}
