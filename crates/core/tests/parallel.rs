//! Integration tests for the parallel membership-query engine and the
//! session API: thread-safety guarantees, worker-count independence of the
//! synthesized grammar, golden query-count pins for the paper's running
//! example, incremental `add_seeds` equivalence, cancellation, and cache
//! snapshot round-trips.

use glade_core::testing::xml_like;
use glade_core::{
    CachingOracle, CancelToken, FnOracle, GladeBuilder, Oracle, ProcessOracle, SynthesisStats,
};
use glade_grammar::grammar_to_text;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Golden distinct-query count for the single seed `<a>hi</a>`.
const GOLDEN_UNIQUE: usize = 1324;
/// Golden total-query count (including cache hits) for the same run.
const GOLDEN_TOTAL: usize = 1442;

#[test]
fn oracle_types_are_send_sync() {
    // Compile-time assertions: the whole oracle surface must be shareable
    // across the query engine's worker threads. (The internal QueryRunner
    // has the same assertion in its unit tests.)
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<FnOracle<fn(&[u8]) -> bool>>();
    assert_send_sync::<CachingOracle<FnOracle<fn(&[u8]) -> bool>>>();
    assert_send_sync::<ProcessOracle>();
    assert_send_sync::<Box<dyn Oracle>>();
    assert_send_sync::<&dyn Oracle>();

    // And `dyn Oracle` itself must be usable from a spawned thread.
    let oracle: Box<dyn Oracle> = Box::new(FnOracle::new(xml_like));
    std::thread::scope(|s| {
        let o = &oracle;
        s.spawn(move || assert!(o.accepts(b"<a>hi</a>")));
    });
}

/// Runs the full pipeline on the running example at a given worker count,
/// through the session API.
fn synthesize_with_workers(workers: usize) -> (String, SynthesisStats, usize) {
    let calls = AtomicUsize::new(0);
    let oracle = FnOracle::new(|i: &[u8]| {
        calls.fetch_add(1, Ordering::Relaxed);
        xml_like(i)
    });
    let mut session = GladeBuilder::new().worker_threads(workers).session(&oracle);
    let result = session.add_seeds(&[b"<a>hi</a>".to_vec()]).expect("valid seed");
    (grammar_to_text(&result.grammar), result.stats, calls.load(Ordering::Relaxed))
}

#[test]
fn parallel_and_sequential_paths_agree_exactly() {
    // The phase-2 merge checks and chargen probes fan out across workers;
    // the synthesized grammar (which encodes the union-find classes as its
    // nonterminal structure), the distinct-query count, and every merge
    // counter must be bit-identical to the sequential path.
    let (seq_grammar, seq_stats, seq_calls) = synthesize_with_workers(1);
    for workers in [2, 4, 8] {
        let (par_grammar, par_stats, par_calls) = synthesize_with_workers(workers);
        assert_eq!(par_grammar, seq_grammar, "grammar differs at {workers} workers");
        assert_eq!(
            par_stats.unique_queries, seq_stats.unique_queries,
            "unique queries differ at {workers} workers"
        );
        assert_eq!(par_stats.total_queries, seq_stats.total_queries);
        assert_eq!(par_stats.merge_pairs_tried, seq_stats.merge_pairs_tried);
        assert_eq!(par_stats.merges_accepted, seq_stats.merges_accepted);
        assert_eq!(par_stats.chars_generalized, seq_stats.chars_generalized);
        assert_eq!(par_stats.star_count, seq_stats.star_count);
        // Dedup means the raw oracle is hit exactly once per distinct query
        // regardless of worker count.
        assert_eq!(par_calls, seq_calls, "oracle call count differs at {workers} workers");
    }
}

#[test]
fn golden_query_counts_on_running_example() {
    // Pins the query-engine cost model for `<a>hi</a>` (Figure 2's seed),
    // now posed through the session API. A change here means the cache,
    // dedup, or batch construction changed: bump the numbers only with an
    // explanation in the commit message.
    let (_, stats, calls) = synthesize_with_workers(1);
    assert_eq!(stats.unique_queries, GOLDEN_UNIQUE);
    assert_eq!(stats.new_unique_queries, GOLDEN_UNIQUE, "fresh session: all queries are new");
    assert_eq!(stats.total_queries, GOLDEN_TOTAL);
    assert_eq!(stats.merge_pairs_tried, 1);
    assert_eq!(stats.merges_accepted, 1);
    assert_eq!(stats.chars_generalized, 50);
    assert_eq!(calls, stats.unique_queries, "each distinct query hits the oracle once");
}

#[test]
fn default_config_uses_available_parallelism_and_stays_correct() {
    // The default (no worker_threads call) resolves to the machine's
    // available parallelism; whatever that is, the result must match the
    // sequential reference.
    let oracle = FnOracle::new(xml_like);
    let auto = GladeBuilder::new().synthesize(&[b"<a>hi</a>".to_vec()], &oracle).expect("valid");
    let (seq_grammar, seq_stats, _) = synthesize_with_workers(1);
    assert_eq!(grammar_to_text(&auto.grammar), seq_grammar);
    assert_eq!(auto.stats.unique_queries, seq_stats.unique_queries);
}

#[test]
fn concurrent_oracle_sees_consistent_snapshot() {
    // A shared CachingOracle under the engine: totals line up and the
    // verdicts stay deterministic.
    let oracle = CachingOracle::new(FnOracle::new(xml_like));
    let result = GladeBuilder::new()
        .worker_threads(8)
        .synthesize(&[b"<a>hi</a>".to_vec()], &oracle)
        .expect("valid");
    // The runner's own cache dedups, so the CachingOracle sees exactly the
    // distinct queries.
    assert_eq!(oracle.total_queries(), result.stats.unique_queries);
    assert_eq!(oracle.unique_queries(), result.stats.unique_queries);
}

#[test]
fn incremental_add_seeds_matches_fresh_multiseed_run() {
    // Worker-count determinism extended to the incremental path: feeding
    // seeds through two add_seeds calls must produce byte-identical
    // grammar text and the same distinct-query count as one fresh run on
    // the combined seed list — at every worker count.
    let seed1 = b"<a>hi</a>".to_vec();
    let seed2 = b"<a><a>x</a></a>".to_vec(); // not matched by seed1's regex
    for workers in [1, 4] {
        let oracle = FnOracle::new(xml_like);
        let fresh = GladeBuilder::new()
            .worker_threads(workers)
            .synthesize(&[seed1.clone(), seed2.clone()], &oracle)
            .expect("valid seeds");

        let mut session = GladeBuilder::new().worker_threads(workers).session(&oracle);
        let first = session.add_seeds(std::slice::from_ref(&seed1)).expect("valid seed");
        assert_eq!(first.stats.unique_queries, GOLDEN_UNIQUE, "workers={workers}");
        let second = session.add_seeds(std::slice::from_ref(&seed2)).expect("valid seed");

        assert_eq!(
            grammar_to_text(&second.grammar),
            grammar_to_text(&fresh.grammar),
            "incremental grammar drifted at {workers} workers"
        );
        assert_eq!(
            second.stats.unique_queries, fresh.stats.unique_queries,
            "incremental distinct-query count drifted at {workers} workers"
        );
        assert_eq!(second.stats.seeds_used, fresh.stats.seeds_used);
        assert_eq!(second.stats.star_count, fresh.stats.star_count);
        assert_eq!(second.stats.merges_accepted, fresh.stats.merges_accepted);
    }
}

#[test]
fn cancellation_mid_phase_still_yields_seed_accepting_grammar() {
    // Cancel deterministically after a fixed number of oracle calls —
    // deep inside character generalization for this seed — at several
    // trip points. Whatever was in flight, the returned grammar must
    // contain every seed (the fail-closed degradation path).
    for trip_at in [10, 100, 700] {
        let token = CancelToken::new();
        let calls = AtomicUsize::new(0);
        let trip_token = token.clone();
        let oracle = FnOracle::new(move |i: &[u8]| {
            if calls.fetch_add(1, Ordering::Relaxed) + 1 == trip_at {
                trip_token.cancel();
            }
            xml_like(i)
        });
        let mut session =
            GladeBuilder::new().worker_threads(1).cancel_token(token).session(&oracle);
        let result = session.add_seeds(&[b"<a>hi</a>".to_vec()]).expect("valid seed");
        assert!(result.stats.cancelled, "trip_at={trip_at}");
        assert!(
            glade_grammar::Earley::new(&result.grammar).accepts(b"<a>hi</a>"),
            "seed lost after cancelling at {trip_at} calls"
        );
        assert!(
            result.stats.unique_queries < GOLDEN_UNIQUE,
            "cancellation at {trip_at} did not shorten the run"
        );
    }
}

#[test]
fn cache_snapshot_roundtrip_answers_full_run_with_zero_new_queries() {
    // The acceptance invariant for persistent caches: save → load → re-run
    // answers the entire running-example run from the snapshot.
    let oracle = FnOracle::new(xml_like);
    let mut warm = GladeBuilder::new().session(&oracle);
    let first = warm.add_seeds(&[b"<a>hi</a>".to_vec()]).expect("valid seed");
    assert_eq!(first.stats.unique_queries, GOLDEN_UNIQUE);

    let path = std::env::temp_dir().join(format!("glade-cache-test-{}.txt", std::process::id()));
    warm.save_cache(&path).expect("snapshot written");

    // The cold session's oracle counts calls: it must never be consulted.
    let calls = AtomicUsize::new(0);
    let counting = FnOracle::new(|i: &[u8]| {
        calls.fetch_add(1, Ordering::Relaxed);
        xml_like(i)
    });
    let mut cold = GladeBuilder::new().session(&counting);
    let loaded = cold.load_cache(&path).expect("snapshot read");
    assert_eq!(loaded, GOLDEN_UNIQUE);
    let second = cold.add_seeds(&[b"<a>hi</a>".to_vec()]).expect("valid seed");
    let _ = std::fs::remove_file(&path);

    assert_eq!(second.stats.new_unique_queries, 0, "warm re-run paid oracle calls");
    assert_eq!(calls.load(Ordering::Relaxed), 0, "oracle consulted despite warm cache");
    assert_eq!(second.stats.unique_queries, GOLDEN_UNIQUE);
    assert_eq!(grammar_to_text(&second.grammar), grammar_to_text(&first.grammar));
}
