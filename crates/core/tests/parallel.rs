//! Integration tests for the parallel membership-query engine and the
//! session API: thread-safety guarantees, worker-count independence of the
//! synthesized grammar (including under heavily skewed oracle latencies,
//! which exercise the work-stealing dispatch), golden query-count pins for
//! the paper's running example, incremental `add_seeds` equivalence,
//! cancellation, cache snapshot round-trips, and the pooled process
//! oracle's wire protocol and crash recovery (against an independently
//! implemented worker compiled on the fly with `rustc`).

use glade_core::testing::xml_like;
use glade_core::{
    CachingOracle, CancelToken, EventLog, FnOracle, GladeBuilder, Oracle, PooledProcessOracle,
    ProcessOracle, SynthEvent, SynthesisStats,
};
use glade_grammar::grammar_to_text;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Golden distinct-query count for the single seed `<a>hi</a>`.
const GOLDEN_UNIQUE: usize = 1324;
/// Golden total-query count (including cache hits) for the same run.
const GOLDEN_TOTAL: usize = 1442;

#[test]
fn oracle_types_are_send_sync() {
    // Compile-time assertions: the whole oracle surface must be shareable
    // across the query engine's worker threads. (The internal QueryRunner
    // has the same assertion in its unit tests.)
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<FnOracle<fn(&[u8]) -> bool>>();
    assert_send_sync::<CachingOracle<FnOracle<fn(&[u8]) -> bool>>>();
    assert_send_sync::<ProcessOracle>();
    assert_send_sync::<Box<dyn Oracle>>();
    assert_send_sync::<&dyn Oracle>();

    // And `dyn Oracle` itself must be usable from a spawned thread.
    let oracle: Box<dyn Oracle> = Box::new(FnOracle::new(xml_like));
    std::thread::scope(|s| {
        let o = &oracle;
        s.spawn(move || assert!(o.accepts(b"<a>hi</a>")));
    });
}

/// Runs the full pipeline on the running example at a given worker count,
/// through the session API.
fn synthesize_with_workers(workers: usize) -> (String, SynthesisStats, usize) {
    let calls = AtomicUsize::new(0);
    let oracle = FnOracle::new(|i: &[u8]| {
        calls.fetch_add(1, Ordering::Relaxed);
        xml_like(i)
    });
    let mut session = GladeBuilder::new().worker_threads(workers).session(&oracle);
    let result = session.add_seeds(&[b"<a>hi</a>".to_vec()]).expect("valid seed");
    (grammar_to_text(&result.grammar), result.stats, calls.load(Ordering::Relaxed))
}

#[test]
fn parallel_and_sequential_paths_agree_exactly() {
    // The phase-2 merge checks and chargen probes fan out across workers;
    // the synthesized grammar (which encodes the union-find classes as its
    // nonterminal structure), the distinct-query count, and every merge
    // counter must be bit-identical to the sequential path.
    let (seq_grammar, seq_stats, seq_calls) = synthesize_with_workers(1);
    for workers in [2, 4, 8] {
        let (par_grammar, par_stats, par_calls) = synthesize_with_workers(workers);
        assert_eq!(par_grammar, seq_grammar, "grammar differs at {workers} workers");
        assert_eq!(
            par_stats.unique_queries, seq_stats.unique_queries,
            "unique queries differ at {workers} workers"
        );
        assert_eq!(par_stats.total_queries, seq_stats.total_queries);
        assert_eq!(par_stats.merge_pairs_tried, seq_stats.merge_pairs_tried);
        assert_eq!(par_stats.merges_accepted, seq_stats.merges_accepted);
        assert_eq!(par_stats.chars_generalized, seq_stats.chars_generalized);
        assert_eq!(par_stats.star_count, seq_stats.star_count);
        // Dedup means the raw oracle is hit exactly once per distinct query
        // regardless of worker count.
        assert_eq!(par_calls, seq_calls, "oracle call count differs at {workers} workers");
    }
}

#[test]
fn golden_query_counts_on_running_example() {
    // Pins the query-engine cost model for `<a>hi</a>` (Figure 2's seed),
    // now posed through the session API. A change here means the cache,
    // dedup, or batch construction changed: bump the numbers only with an
    // explanation in the commit message.
    let (_, stats, calls) = synthesize_with_workers(1);
    assert_eq!(stats.unique_queries, GOLDEN_UNIQUE);
    assert_eq!(stats.new_unique_queries, GOLDEN_UNIQUE, "fresh session: all queries are new");
    assert_eq!(stats.total_queries, GOLDEN_TOTAL);
    assert_eq!(stats.merge_pairs_tried, 1);
    assert_eq!(stats.merges_accepted, 1);
    assert_eq!(stats.chars_generalized, 50);
    assert_eq!(calls, stats.unique_queries, "each distinct query hits the oracle once");
}

#[test]
fn default_config_uses_available_parallelism_and_stays_correct() {
    // The default (no worker_threads call) resolves to the machine's
    // available parallelism; whatever that is, the result must match the
    // sequential reference.
    let oracle = FnOracle::new(xml_like);
    let auto = GladeBuilder::new().synthesize(&[b"<a>hi</a>".to_vec()], &oracle).expect("valid");
    let (seq_grammar, seq_stats, _) = synthesize_with_workers(1);
    assert_eq!(grammar_to_text(&auto.grammar), seq_grammar);
    assert_eq!(auto.stats.unique_queries, seq_stats.unique_queries);
}

#[test]
fn concurrent_oracle_sees_consistent_snapshot() {
    // A shared CachingOracle under the engine: totals line up and the
    // verdicts stay deterministic.
    let oracle = CachingOracle::new(FnOracle::new(xml_like));
    let result = GladeBuilder::new()
        .worker_threads(8)
        .synthesize(&[b"<a>hi</a>".to_vec()], &oracle)
        .expect("valid");
    // The runner's own cache dedups, so the CachingOracle sees exactly the
    // distinct queries.
    assert_eq!(oracle.total_queries(), result.stats.unique_queries);
    assert_eq!(oracle.unique_queries(), result.stats.unique_queries);
}

#[test]
fn incremental_add_seeds_matches_fresh_multiseed_run() {
    // Worker-count determinism extended to the incremental path: feeding
    // seeds through two add_seeds calls must produce byte-identical
    // grammar text and the same distinct-query count as one fresh run on
    // the combined seed list — at every worker count.
    let seed1 = b"<a>hi</a>".to_vec();
    let seed2 = b"<a><a>x</a></a>".to_vec(); // not matched by seed1's regex
    for workers in [1, 4] {
        let oracle = FnOracle::new(xml_like);
        let fresh = GladeBuilder::new()
            .worker_threads(workers)
            .synthesize(&[seed1.clone(), seed2.clone()], &oracle)
            .expect("valid seeds");

        let mut session = GladeBuilder::new().worker_threads(workers).session(&oracle);
        let first = session.add_seeds(std::slice::from_ref(&seed1)).expect("valid seed");
        assert_eq!(first.stats.unique_queries, GOLDEN_UNIQUE, "workers={workers}");
        let second = session.add_seeds(std::slice::from_ref(&seed2)).expect("valid seed");

        assert_eq!(
            grammar_to_text(&second.grammar),
            grammar_to_text(&fresh.grammar),
            "incremental grammar drifted at {workers} workers"
        );
        assert_eq!(
            second.stats.unique_queries, fresh.stats.unique_queries,
            "incremental distinct-query count drifted at {workers} workers"
        );
        assert_eq!(second.stats.seeds_used, fresh.stats.seeds_used);
        assert_eq!(second.stats.star_count, fresh.stats.star_count);
        assert_eq!(second.stats.merges_accepted, fresh.stats.merges_accepted);
    }
}

#[test]
fn skewed_latency_does_not_change_grammar_or_query_counts() {
    // Work-stealing dispatch exists for heterogeneous query latencies: one
    // pathological input must not idle the rest of the pool, and — more
    // importantly for correctness — scheduling must never leak into the
    // result. Per-query delay here varies 100× (2 µs to 200 µs, keyed off
    // a hash of the input so it is stable across runs and worker counts);
    // grammar bytes and the distinct-query count must be invariant across
    // 1/2/4/8 workers.
    fn skewed_delay_us(input: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in input {
            h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
        }
        2 + h % 199 // 2..=200 µs: a 100× spread
    }
    let oracle = FnOracle::new(|i: &[u8]| {
        std::thread::sleep(std::time::Duration::from_micros(skewed_delay_us(i)));
        xml_like(i)
    });
    let mut reference: Option<(String, usize, usize)> = None;
    for workers in [1usize, 2, 4, 8] {
        let result = GladeBuilder::new()
            .worker_threads(workers)
            .synthesize(&[b"<a>hi</a>".to_vec()], &oracle)
            .expect("valid seed");
        let row = (
            grammar_to_text(&result.grammar),
            result.stats.unique_queries,
            result.stats.total_queries,
        );
        match &reference {
            None => {
                assert_eq!(row.1, GOLDEN_UNIQUE);
                assert_eq!(row.2, GOLDEN_TOTAL);
                reference = Some(row);
            }
            Some(expected) => {
                assert_eq!(&row, expected, "skewed-latency drift at {workers} workers");
            }
        }
    }
}

/// Source of a protocol worker implemented *independently* of
/// `glade_core::serve_oracle_worker` — compiling and driving it is a wire-
/// format compatibility test, not a round-trip through our own helper.
/// Language: nonempty strings of `x`. `--crash-after N` makes the worker
/// exit abruptly after answering N queries; the input `CRASH!` makes it
/// exit *without* answering (a poison input that defeats the retry).
const TEST_WORKER_SOURCE: &str = r#"
use std::io::{Read, Write};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let crash_after: Option<usize> = args
        .iter()
        .position(|a| a == "--crash-after")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = stdin.lock();
    let mut output = stdout.lock();
    let mut buf = Vec::new();
    let mut answered = 0usize;
    loop {
        let mut len = [0u8; 4];
        if input.read_exact(&mut len).is_err() {
            return;
        }
        let n = u32::from_le_bytes(len) as usize;
        buf.clear();
        buf.resize(n, 0);
        if input.read_exact(&mut buf).is_err() {
            return;
        }
        if buf == b"CRASH!" {
            std::process::exit(3);
        }
        let verdict = !buf.is_empty() && buf.iter().all(|&b| b == b'x');
        if output.write_all(&[u8::from(verdict)]).is_err() {
            return;
        }
        let _ = output.flush();
        answered += 1;
        if crash_after == Some(answered) {
            std::process::exit(42);
        }
    }
}
"#;

/// Compiles the test worker once per test process. Returns `None` (and the
/// dependent tests skip) when no `rustc` is available on PATH.
fn test_worker_bin() -> Option<&'static str> {
    static BIN: OnceLock<Option<String>> = OnceLock::new();
    BIN.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("glade-test-worker-{}", std::process::id()));
        std::fs::create_dir_all(&dir).ok()?;
        let src = dir.join("worker.rs");
        let bin = dir.join(if cfg!(windows) { "worker.exe" } else { "worker" });
        std::fs::write(&src, TEST_WORKER_SOURCE).ok()?;
        let status = std::process::Command::new("rustc")
            .arg("--edition=2021")
            .arg("-O")
            .arg(&src)
            .arg("-o")
            .arg(&bin)
            .status()
            .ok()?;
        if !status.success() {
            return None;
        }
        Some(bin.to_str()?.to_owned())
    })
    .as_deref()
}

#[test]
fn pooled_oracle_protocol_round_trip() {
    let Some(bin) = test_worker_bin() else {
        eprintln!("skipping: rustc unavailable, cannot build the protocol worker");
        return;
    };
    let pool = PooledProcessOracle::new(bin).pool_size(3);
    // Single-threaded sanity, including the empty input (a zero-length
    // frame) and binary bytes.
    assert!(pool.accepts(b"x"));
    assert!(pool.accepts(b"xxxx"));
    assert!(!pool.accepts(b""));
    assert!(!pool.accepts(b"xyx"));
    assert!(!pool.accepts(b"\x00\xff"));
    // Concurrent queries share the pool without crosstalk.
    std::thread::scope(|s| {
        for t in 0..6 {
            let pool = &pool;
            s.spawn(move || {
                for i in 0..25usize {
                    let input = vec![b'x'; (t + i) % 7];
                    assert_eq!(pool.accepts(&input), !input.is_empty(), "thread {t} iter {i}");
                }
            });
        }
    });
    assert_eq!(pool.failure_count(), 0);
    assert_eq!(pool.respawn_count(), 0, "healthy workers are never respawned");
}

#[test]
fn pooled_oracle_recovers_from_worker_crashes() {
    let Some(bin) = test_worker_bin() else {
        eprintln!("skipping: rustc unavailable, cannot build the protocol worker");
        return;
    };
    // The worker dies after every 3 answers; with a single slot the pool
    // must keep reaping, respawning, and retrying without ever returning a
    // wrong verdict or counting a failure.
    let pool = PooledProcessOracle::new(bin).arg("--crash-after").arg("3").pool_size(1);
    for i in 0..20usize {
        let input = vec![b'x'; i % 5];
        assert_eq!(pool.accepts(&input), !input.is_empty(), "iter {i}");
    }
    assert!(pool.respawn_count() >= 5, "respawns: {}", pool.respawn_count());
    assert_eq!(pool.failure_count(), 0, "every crash was recovered");
}

#[test]
fn pooled_oracle_poison_input_degrades_and_recovers() {
    let Some(bin) = test_worker_bin() else {
        eprintln!("skipping: rustc unavailable, cannot build the protocol worker");
        return;
    };
    let pool = PooledProcessOracle::new(bin).pool_size(1);
    assert!(pool.accepts(b"xx"));
    // The poison input kills the worker *and* its respawned replacement
    // before any answer: the query degrades to false and is counted.
    assert!(!pool.accepts(b"CRASH!"));
    assert_eq!(pool.failure_count(), 1);
    assert!(pool.respawn_count() >= 1);
    // The pool is still serviceable afterwards.
    assert!(pool.accepts(b"xxx"));
    assert!(!pool.accepts(b"y"));
    assert_eq!(pool.failure_count(), 1, "healthy queries add no failures");
}

#[test]
fn oracle_execution_failures_are_counted_and_surfaced() {
    // An oracle that cannot execute some fraction of its queries: the run
    // completes (fail closed, seed preserved) but reports the failures in
    // the stats and as OracleFailures events — the satellite fix for
    // ProcessOracle's old silent `false` on spawn errors.
    struct FailingOracle {
        failures: AtomicUsize,
    }
    impl Oracle for FailingOracle {
        fn accepts(&self, input: &[u8]) -> bool {
            self.accepts_checked(input).unwrap_or(false)
        }
        fn accepts_checked(&self, input: &[u8]) -> Option<bool> {
            if input.contains(&b'~') {
                // Simulated execution failure: no verdict obtainable.
                self.failures.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Some(xml_like(input))
        }
        fn failure_count(&self) -> usize {
            self.failures.load(Ordering::Relaxed)
        }
    }
    let oracle = FailingOracle { failures: AtomicUsize::new(0) };
    let log = Arc::new(EventLog::new());
    let mut session = GladeBuilder::new().observer(log.clone()).session(&oracle);
    let result = session.add_seeds(&[b"<a>hi</a>".to_vec()]).expect("valid seed");
    assert!(result.stats.oracle_failures > 0, "chargen probes contain '~'");
    assert_eq!(result.stats.oracle_failures, oracle.failure_count());
    assert!(glade_grammar::Earley::new(&result.grammar).accepts(b"<a>hi</a>"));
    // Degraded answers must never be cached: a snapshot of this session
    // would otherwise poison every warm-started run with false rejects.
    assert_eq!(
        result.stats.unique_queries + result.stats.oracle_failures,
        GOLDEN_UNIQUE,
        "failed executions leaked into the cache"
    );
    let persisted = glade_core::cache_from_text(&session.export_cache()).expect("snapshot parses");
    assert!(
        persisted.iter().all(|(query, _)| !query.contains(&b'~')),
        "a failed '~' query was persisted into the snapshot"
    );
    let reported: usize = log
        .events()
        .iter()
        .filter_map(|e| match e {
            SynthEvent::OracleFailures { new_failures, .. } => Some(*new_failures),
            _ => None,
        })
        .sum();
    assert_eq!(reported, result.stats.oracle_failures, "events account for every failure");
}

#[test]
fn cancellation_mid_phase_still_yields_seed_accepting_grammar() {
    // Cancel deterministically after a fixed number of oracle calls —
    // deep inside character generalization for this seed — at several
    // trip points. Whatever was in flight, the returned grammar must
    // contain every seed (the fail-closed degradation path).
    for trip_at in [10, 100, 700] {
        let token = CancelToken::new();
        let calls = AtomicUsize::new(0);
        let trip_token = token.clone();
        let oracle = FnOracle::new(move |i: &[u8]| {
            if calls.fetch_add(1, Ordering::Relaxed) + 1 == trip_at {
                trip_token.cancel();
            }
            xml_like(i)
        });
        let mut session =
            GladeBuilder::new().worker_threads(1).cancel_token(token).session(&oracle);
        let result = session.add_seeds(&[b"<a>hi</a>".to_vec()]).expect("valid seed");
        assert!(result.stats.cancelled, "trip_at={trip_at}");
        assert!(
            glade_grammar::Earley::new(&result.grammar).accepts(b"<a>hi</a>"),
            "seed lost after cancelling at {trip_at} calls"
        );
        assert!(
            result.stats.unique_queries < GOLDEN_UNIQUE,
            "cancellation at {trip_at} did not shorten the run"
        );
    }
}

#[test]
fn cache_snapshot_roundtrip_answers_full_run_with_zero_new_queries() {
    // The acceptance invariant for persistent caches: save → load → re-run
    // answers the entire running-example run from the snapshot.
    let oracle = FnOracle::new(xml_like);
    let mut warm = GladeBuilder::new().session(&oracle);
    let first = warm.add_seeds(&[b"<a>hi</a>".to_vec()]).expect("valid seed");
    assert_eq!(first.stats.unique_queries, GOLDEN_UNIQUE);

    let path = std::env::temp_dir().join(format!("glade-cache-test-{}.txt", std::process::id()));
    warm.save_cache(&path).expect("snapshot written");

    // The cold session's oracle counts calls: it must never be consulted.
    let calls = AtomicUsize::new(0);
    let counting = FnOracle::new(|i: &[u8]| {
        calls.fetch_add(1, Ordering::Relaxed);
        xml_like(i)
    });
    let mut cold = GladeBuilder::new().session(&counting);
    let loaded = cold.load_cache(&path).expect("snapshot read");
    assert_eq!(loaded, GOLDEN_UNIQUE);
    let second = cold.add_seeds(&[b"<a>hi</a>".to_vec()]).expect("valid seed");
    let _ = std::fs::remove_file(&path);

    assert_eq!(second.stats.new_unique_queries, 0, "warm re-run paid oracle calls");
    assert_eq!(calls.load(Ordering::Relaxed), 0, "oracle consulted despite warm cache");
    assert_eq!(second.stats.unique_queries, GOLDEN_UNIQUE);
    assert_eq!(grammar_to_text(&second.grammar), grammar_to_text(&first.grammar));
}
