//! Integration tests for the parallel membership-query engine: thread-safety
//! guarantees, worker-count independence of the synthesized grammar, and a
//! golden query-count pin for the paper's running example.

use glade_core::{CachingOracle, FnOracle, Glade, GladeConfig, Oracle, ProcessOracle};
use glade_grammar::grammar_to_text;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Oracle for the paper's XML-like running example: A → (a..z | <a>A</a>)*.
/// (Local copy: `glade_targets::languages::toy_xml` defines the same
/// language, but glade-core cannot dev-depend on glade-targets without a
/// dependency cycle.)
fn xml_like(input: &[u8]) -> bool {
    fn parse(mut s: &[u8]) -> Option<&[u8]> {
        loop {
            if s.first().is_some_and(|b| b.is_ascii_lowercase()) {
                s = &s[1..];
            } else if s.starts_with(b"<a>") {
                let rest = parse(&s[3..])?;
                s = rest.strip_prefix(b"</a>")?;
            } else {
                return Some(s);
            }
        }
    }
    parse(input).is_some_and(|r| r.is_empty())
}

#[test]
fn oracle_types_are_send_sync() {
    // Compile-time assertions: the whole oracle surface must be shareable
    // across the query engine's worker threads. (The internal QueryRunner
    // has the same assertion in its unit tests.)
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<FnOracle<fn(&[u8]) -> bool>>();
    assert_send_sync::<CachingOracle<FnOracle<fn(&[u8]) -> bool>>>();
    assert_send_sync::<ProcessOracle>();
    assert_send_sync::<Box<dyn Oracle>>();
    assert_send_sync::<&dyn Oracle>();

    // And `dyn Oracle` itself must be usable from a spawned thread.
    let oracle: Box<dyn Oracle> = Box::new(FnOracle::new(xml_like));
    std::thread::scope(|s| {
        let o = &oracle;
        s.spawn(move || assert!(o.accepts(b"<a>hi</a>")));
    });
}

/// Runs the full pipeline on the running example at a given worker count.
fn synthesize_with_workers(workers: usize) -> (String, glade_core::SynthesisStats, usize) {
    let calls = AtomicUsize::new(0);
    let oracle = FnOracle::new(|i: &[u8]| {
        calls.fetch_add(1, Ordering::Relaxed);
        xml_like(i)
    });
    let cfg = GladeConfig { worker_threads: Some(workers), ..GladeConfig::default() };
    let result =
        Glade::with_config(cfg).synthesize(&[b"<a>hi</a>".to_vec()], &oracle).expect("valid seed");
    (grammar_to_text(&result.grammar), result.stats, calls.load(Ordering::Relaxed))
}

#[test]
fn parallel_and_sequential_paths_agree_exactly() {
    // The phase-2 merge checks and chargen probes fan out across workers;
    // the synthesized grammar (which encodes the union-find classes as its
    // nonterminal structure), the distinct-query count, and every merge
    // counter must be bit-identical to the sequential path.
    let (seq_grammar, seq_stats, seq_calls) = synthesize_with_workers(1);
    for workers in [2, 4, 8] {
        let (par_grammar, par_stats, par_calls) = synthesize_with_workers(workers);
        assert_eq!(par_grammar, seq_grammar, "grammar differs at {workers} workers");
        assert_eq!(
            par_stats.unique_queries, seq_stats.unique_queries,
            "unique queries differ at {workers} workers"
        );
        assert_eq!(par_stats.total_queries, seq_stats.total_queries);
        assert_eq!(par_stats.merge_pairs_tried, seq_stats.merge_pairs_tried);
        assert_eq!(par_stats.merges_accepted, seq_stats.merges_accepted);
        assert_eq!(par_stats.chars_generalized, seq_stats.chars_generalized);
        assert_eq!(par_stats.star_count, seq_stats.star_count);
        // Dedup means the raw oracle is hit exactly once per distinct query
        // regardless of worker count.
        assert_eq!(par_calls, seq_calls, "oracle call count differs at {workers} workers");
    }
}

#[test]
fn golden_query_counts_on_running_example() {
    // Pins the query-engine cost model for `<a>hi</a>` (Figure 2's seed).
    // A change here means the cache, dedup, or batch construction changed:
    // bump the numbers only with an explanation in the commit message.
    let (_, stats, calls) = synthesize_with_workers(1);
    assert_eq!(stats.unique_queries, 1324);
    assert_eq!(stats.total_queries, 1442);
    assert_eq!(stats.merge_pairs_tried, 1);
    assert_eq!(stats.merges_accepted, 1);
    assert_eq!(stats.chars_generalized, 50);
    assert_eq!(calls, stats.unique_queries, "each distinct query hits the oracle once");
}

#[test]
fn default_config_uses_available_parallelism_and_stays_correct() {
    // The default (worker_threads: None) resolves to the machine's
    // available parallelism; whatever that is, the result must match the
    // sequential reference.
    let oracle = FnOracle::new(xml_like);
    let auto = Glade::new().synthesize(&[b"<a>hi</a>".to_vec()], &oracle).expect("valid");
    let (seq_grammar, seq_stats, _) = synthesize_with_workers(1);
    assert_eq!(grammar_to_text(&auto.grammar), seq_grammar);
    assert_eq!(auto.stats.unique_queries, seq_stats.unique_queries);
}

#[test]
fn concurrent_oracle_sees_consistent_snapshot() {
    // A shared CachingOracle under the engine: totals line up and the
    // verdicts stay deterministic.
    let oracle = CachingOracle::new(FnOracle::new(xml_like));
    let cfg = GladeConfig { worker_threads: Some(8), ..GladeConfig::default() };
    let result =
        Glade::with_config(cfg).synthesize(&[b"<a>hi</a>".to_vec()], &oracle).expect("valid");
    // The runner's own cache dedups, so the CachingOracle sees exactly the
    // distinct queries.
    assert_eq!(oracle.total_queries(), result.stats.unique_queries);
    assert_eq!(oracle.unique_queries(), result.stats.unique_queries);
}
