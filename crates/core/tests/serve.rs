//! Integration tests for the `glade serve` subsystem: in-process server,
//! real unix sockets, real [`ServeClient`]s on their own threads.
//!
//! The load-bearing pin throughout is *determinism through the server*:
//! every grammar synthesized via a campaign must be byte-identical to a
//! solo local [`Session`](glade_core::Session) run on the same seeds, with
//! the same query counts — including under concurrent tenants, per-tenant
//! budgets, cancellation, and injected oracle faults, none of which may
//! leak into another tenant's bytes or statistics.

#![cfg(any(target_os = "linux", target_os = "macos"))]

use glade_core::serve::{OpenRequest, OracleFactory, ServeClient, ServeConfig, Server};
use glade_core::testing::{xml_like, xml_like_with_self_closing};
use glade_core::{
    FaultPlan, FaultyOracle, FnOracle, GladeBuilder, Oracle, SynthEvent, SynthesisStats,
};
use glade_grammar::grammar_to_text;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Golden counts for the running example (`<a>hi</a>` against
/// [`xml_like`]) with the query-reduction layer on — the same pins as
/// `tests/parallel.rs`. The serve tests always open campaigns with
/// `memoize = true` explicitly, so the pins hold regardless of the
/// `GLADE_TEST_MEMO` matrix variable.
const GOLDEN_UNIQUE_ON: usize = 965;
const GOLDEN_TOTAL_ON: usize = 985;

/// Per-test timeout guard (same rationale as in `tests/parallel.rs`): a
/// wedged accept loop or a lost wake would otherwise hang the whole CI
/// job inside a blocking socket read. `GLADE_TEST_TIMEOUT_SECS` tunes the
/// limit (default 120 s).
struct Watchdog {
    done: Arc<std::sync::atomic::AtomicBool>,
}

impl Watchdog {
    fn arm(name: &'static str) -> Self {
        let secs = std::env::var("GLADE_TEST_TIMEOUT_SECS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(120u64);
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = done.clone();
        std::thread::spawn(move || {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(secs);
            while std::time::Instant::now() < deadline {
                if flag.load(Ordering::Relaxed) {
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
            eprintln!("watchdog: `{name}` still running after {secs}s — the serve loop is hung");
            std::process::exit(99);
        });
        Watchdog { done }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.done.store(true, Ordering::Relaxed);
    }
}

/// A fresh scratch directory (unique per test) for sockets and caches.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("glade-serve-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The factory every test server uses. Specs:
/// * `xml` — the running example's [`xml_like`] oracle.
/// * `xml-sc` — the Section 7 self-closing variant (distinct fingerprint,
///   for cache-namespacing assertions).
fn test_factory() -> Arc<dyn OracleFactory> {
    Arc::new(|spec: &str| -> Result<(Arc<dyn Oracle>, String), String> {
        match spec {
            "xml" => Ok((Arc::new(FnOracle::new(xml_like)), "test:xml-like".into())),
            "xml-sc" => Ok((
                Arc::new(FnOracle::new(xml_like_with_self_closing)),
                "test:xml-like-self-closing".into(),
            )),
            other => Err(format!("unknown test spec {other:?}")),
        }
    })
}

/// Runs the same seed batches through a solo local session and returns the
/// final grammar text plus stats — the byte-identity baseline.
fn solo_run(oracle: &dyn Oracle, batches: &[Vec<Vec<u8>>]) -> (String, SynthesisStats) {
    solo_run_with(oracle, batches, None)
}

fn solo_run_with(
    oracle: &dyn Oracle,
    batches: &[Vec<Vec<u8>>],
    max_queries: Option<usize>,
) -> (String, SynthesisStats) {
    let mut builder = GladeBuilder::new();
    if let Some(limit) = max_queries {
        builder = builder.max_queries(limit);
    }
    let mut session = builder.session(&oracle);
    let mut last = None;
    for batch in batches {
        last = Some(session.add_seeds(batch).expect("solo run succeeds"));
    }
    let result = last.expect("at least one batch");
    (grammar_to_text(&result.grammar), result.stats)
}

/// The deterministic subset of [`SynthesisStats`] that must be identical
/// between a server campaign and its solo baseline (wall-clock fields are
/// excluded by construction).
fn count_fields(stats: &SynthesisStats) -> [usize; 8] {
    [
        stats.unique_queries,
        stats.new_unique_queries,
        stats.total_queries,
        stats.seeds_used,
        stats.star_count,
        stats.merges_accepted,
        stats.probes_elided,
        stats.oracle_failures,
    ]
}

/// Opens a campaign on `socket` and synthesizes each batch in turn,
/// returning the last outcome (grammar text + stats) and the streamed
/// events.
fn client_run(
    socket: &std::path::Path,
    request: &OpenRequest,
    batches: &[Vec<Vec<u8>>],
) -> (String, SynthesisStats, Vec<SynthEvent>) {
    let mut client = ServeClient::connect(socket).expect("connect");
    client.open(request).expect("open campaign");
    let mut events = Vec::new();
    let mut last = None;
    for batch in batches {
        last = Some(client.synthesize(batch, |event| events.push(event)).expect("synthesize"));
    }
    client.close().expect("close");
    let outcome = last.expect("at least one batch");
    (outcome.grammar_text, outcome.stats, events)
}

#[test]
fn concurrent_tenants_match_solo_runs_and_golden_pins() {
    let _watchdog = Watchdog::arm("concurrent_tenants_match_solo_runs_and_golden_pins");
    let dir = scratch_dir("concurrent");
    let socket = dir.join("sock");

    // Three tenants with distinct seed sets, all sharing one oracle.
    let seed_sets: Vec<Vec<Vec<u8>>> = vec![
        vec![b"<a>hi</a>".to_vec()],
        vec![b"<a><a>deep</a></a>".to_vec()],
        vec![b"xyz".to_vec(), b"<a>ok</a>".to_vec()],
    ];
    let baselines: Vec<(String, SynthesisStats)> = seed_sets
        .iter()
        .map(|seeds| solo_run(&FnOracle::new(xml_like), std::slice::from_ref(seeds)))
        .collect();

    let handle =
        Server::new(test_factory(), ServeConfig::default()).spawn(&socket).expect("spawn server");

    let outcomes: Vec<(String, SynthesisStats, Vec<SynthEvent>)> = std::thread::scope(|s| {
        let joins: Vec<_> = seed_sets
            .iter()
            .map(|seeds| {
                let socket = socket.clone();
                s.spawn(move || {
                    client_run(&socket, &OpenRequest::new("xml"), std::slice::from_ref(seeds))
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().expect("client thread")).collect()
    });

    for (tenant, ((grammar, stats, events), (solo_grammar, solo_stats))) in
        outcomes.iter().zip(&baselines).enumerate()
    {
        assert_eq!(grammar, solo_grammar, "tenant {tenant}: grammar must be byte-identical");
        assert_eq!(
            count_fields(stats),
            count_fields(solo_stats),
            "tenant {tenant}: query counts must match the solo run"
        );
        assert!(!events.is_empty(), "tenant {tenant}: the event stream must be live");
        assert!(
            events
                .iter()
                .any(|e| matches!(e, SynthEvent::PhaseFinished { unique_queries, .. } if *unique_queries > 0)),
            "tenant {tenant}: phase boundaries must stream"
        );
    }

    // The running example keeps its golden memo-on pins through the server.
    assert_eq!(outcomes[0].1.unique_queries, GOLDEN_UNIQUE_ON);
    assert_eq!(outcomes[0].1.total_queries, GOLDEN_TOTAL_ON);

    handle.shutdown().expect("server shutdown");
}

#[test]
fn incremental_seed_batches_match_combined_local_session() {
    let _watchdog = Watchdog::arm("incremental_seed_batches_match_combined_local_session");
    let dir = scratch_dir("incremental");
    let socket = dir.join("sock");
    let batches =
        vec![vec![b"<a>hi</a>".to_vec()], vec![b"<a><a>deep</a></a>".to_vec(), b"ok".to_vec()]];
    let (solo_grammar, solo_stats) = solo_run(&FnOracle::new(xml_like), &batches);

    let handle =
        Server::new(test_factory(), ServeConfig::default()).spawn(&socket).expect("spawn server");

    let mut client = ServeClient::connect(&socket).expect("connect");
    client.open(&OpenRequest::new("xml")).expect("open");
    let first = client.synthesize(&batches[0], |_| {}).expect("first batch");
    assert_eq!(first.stats.unique_queries, GOLDEN_UNIQUE_ON);
    let second = client.synthesize(&batches[1], |_| {}).expect("second batch");
    assert_eq!(second.grammar_text, solo_grammar, "incremental batches must compose");
    assert_eq!(count_fields(&second.stats), count_fields(&solo_stats));

    // An empty SEEDS frame re-synthesizes from current state.
    let again = client.synthesize(&[], |_| {}).expect("empty re-synthesis");
    assert_eq!(again.grammar_text, solo_grammar);
    assert_eq!(again.stats.new_unique_queries, 0, "re-synthesis is fully cached");
    client.close().expect("close");

    handle.shutdown().expect("server shutdown");
}

/// An [`xml_like`] oracle that parks exactly once — on its `gate_after`-th
/// query — until the test releases it, so a cancel frame can land while
/// the run is provably mid-flight.
struct GateOracle {
    gate_after: usize,
    seen: AtomicUsize,
    released: Mutex<bool>,
    parked: Mutex<bool>,
    cv: Condvar,
}

impl GateOracle {
    fn new(gate_after: usize) -> Self {
        GateOracle {
            gate_after,
            seen: AtomicUsize::new(0),
            released: Mutex::new(false),
            parked: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn wait_until_parked(&self) {
        let mut parked = self.parked.lock().unwrap();
        while !*parked {
            parked = self.cv.wait(parked).unwrap();
        }
    }

    fn release(&self) {
        *self.released.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

impl Oracle for GateOracle {
    fn accepts(&self, input: &[u8]) -> bool {
        if self.seen.fetch_add(1, Ordering::SeqCst) == self.gate_after {
            *self.parked.lock().unwrap() = true;
            self.cv.notify_all();
            let mut released = self.released.lock().unwrap();
            while !*released {
                released = self.cv.wait(released).unwrap();
            }
        }
        xml_like(input)
    }
}

#[test]
fn mid_run_cancel_degrades_one_tenant_without_disturbing_another() {
    let _watchdog = Watchdog::arm("mid_run_cancel_degrades_one_tenant_without_disturbing_another");
    let dir = scratch_dir("cancel");
    let socket = dir.join("sock");
    let gate = Arc::new(GateOracle::new(50));
    let (clean_solo_grammar, clean_solo_stats) =
        solo_run(&FnOracle::new(xml_like), &[vec![b"<a>hi</a>".to_vec()]]);

    let factory_gate = Arc::clone(&gate);
    let factory = Arc::new(move |spec: &str| -> Result<(Arc<dyn Oracle>, String), String> {
        match spec {
            "gated-xml" => {
                Ok((Arc::clone(&factory_gate) as Arc<dyn Oracle>, "test:gated-xml".into()))
            }
            "xml" => Ok((Arc::new(FnOracle::new(xml_like)), "test:xml-like".into())),
            other => Err(format!("unknown test spec {other:?}")),
        }
    });
    let handle = Server::new(factory, ServeConfig::default()).spawn(&socket).expect("spawn server");

    // Tenant A's client is built here so the main thread keeps a cancel
    // handle on its socket while the client itself runs on its own thread.
    let mut client_a = ServeClient::connect(&socket).expect("connect A");
    client_a.open(&OpenRequest::new("gated-xml")).expect("open A");
    let mut cancel = client_a.cancel_handle().expect("cancel handle");

    std::thread::scope(|s| {
        let cancelled = s.spawn(move || {
            let outcome = client_a.synthesize(&[b"<a>hi</a>".to_vec()], |_| {}).expect("run A");
            client_a.close().expect("close A");
            outcome
        });
        // Tenant B runs a clean campaign concurrently. While A is parked
        // it holds a scheduler turn, so B simply queues on the scheduler
        // and resumes unharmed once the gate reopens.
        let clean = s.spawn(|| {
            client_run(&socket, &OpenRequest::new("xml"), &[vec![b"<a>hi</a>".to_vec()]])
        });

        gate.wait_until_parked();
        // The run is provably mid-flight (parked on query 50). Cancel it
        // over A's socket; the accept loop is idle (campaigns run on their
        // own threads) and drains the frame within one bounded poll cycle
        // (100 ms), which the sleep out-waits before the gate reopens.
        cancel.cancel().expect("send CANCEL");
        std::thread::sleep(std::time::Duration::from_millis(400));
        gate.release();

        let outcome = cancelled.join().expect("cancelled tenant");
        assert!(outcome.stats.cancelled, "tenant A must observe the cancel");
        assert!(!outcome.grammar_text.is_empty(), "degraded grammar still present");

        let (clean_grammar, clean_stats, _) = clean.join().expect("clean tenant");
        assert_eq!(clean_grammar, clean_solo_grammar, "tenant B never saw the cancel");
        assert_eq!(count_fields(&clean_stats), count_fields(&clean_solo_stats));
    });

    handle.shutdown().expect("server shutdown");
}

#[test]
fn per_tenant_budget_degrades_only_that_tenant() {
    let _watchdog = Watchdog::arm("per_tenant_budget_degrades_only_that_tenant");
    let dir = scratch_dir("budget");
    let socket = dir.join("sock");
    let seeds = vec![b"<a>hi</a>".to_vec()];
    let (full_grammar, full_stats) =
        solo_run(&FnOracle::new(xml_like), std::slice::from_ref(&seeds));
    let (capped_grammar, capped_stats) =
        solo_run_with(&FnOracle::new(xml_like), std::slice::from_ref(&seeds), Some(120));
    assert!(capped_stats.budget_exhausted, "the cap must bind for this test to mean anything");

    let handle =
        Server::new(test_factory(), ServeConfig::default()).spawn(&socket).expect("spawn server");

    let (capped, full) = std::thread::scope(|s| {
        let capped = s.spawn(|| {
            let mut request = OpenRequest::new("xml");
            request.max_queries = Some(120);
            client_run(&socket, &request, std::slice::from_ref(&seeds))
        });
        let full =
            s.spawn(|| client_run(&socket, &OpenRequest::new("xml"), std::slice::from_ref(&seeds)));
        (capped.join().expect("capped tenant"), full.join().expect("full tenant"))
    });

    // Budget degradation is query-count-based, so even the degraded run is
    // deterministic and must match its solo baseline byte for byte.
    assert_eq!(capped.0, capped_grammar, "capped tenant matches its capped solo run");
    assert_eq!(count_fields(&capped.1), count_fields(&capped_stats));
    assert!(capped.1.budget_exhausted);
    assert!(!capped.1.cancelled);

    // ... and never perturbs the unbudgeted tenant next door.
    assert_eq!(full.0, full_grammar);
    assert_eq!(count_fields(&full.1), count_fields(&full_stats));
    assert_eq!(full.1.unique_queries, GOLDEN_UNIQUE_ON);
    assert_eq!(full.1.total_queries, GOLDEN_TOTAL_ON);
    assert!(!full.1.budget_exhausted);

    handle.shutdown().expect("server shutdown");
}

#[test]
fn hung_worker_fault_stays_in_its_tenant() {
    let _watchdog = Watchdog::arm("hung_worker_fault_stays_in_its_tenant");
    let dir = scratch_dir("fault-hang");
    let socket = dir.join("sock");
    let seeds_faulty = vec![b"<a>hi</a>".to_vec()];
    let seeds_clean = vec![b"<a><a>deep</a></a>".to_vec()];

    // Baselines: the faulty tenant against a fresh oracle with the same
    // plan (the counter-based hang is deterministic for a single tenant),
    // the clean tenant against a clean oracle.
    let plan = || FaultPlan::new().hang_after(40);
    let (faulty_solo_grammar, faulty_solo_stats) = solo_run(
        &FaultyOracle::new(FnOracle::new(xml_like), plan()),
        std::slice::from_ref(&seeds_faulty),
    );
    assert!(faulty_solo_stats.oracle_failures > 0, "the plan must actually inject faults");
    let (clean_solo_grammar, clean_solo_stats) =
        solo_run(&FnOracle::new(xml_like), std::slice::from_ref(&seeds_clean));

    let factory = Arc::new(move |spec: &str| -> Result<(Arc<dyn Oracle>, String), String> {
        match spec {
            "hung-xml" => Ok((
                Arc::new(FaultyOracle::new(FnOracle::new(xml_like), plan())),
                "test:hung-xml".into(),
            )),
            "xml" => Ok((Arc::new(FnOracle::new(xml_like)), "test:xml-like".into())),
            other => Err(format!("unknown test spec {other:?}")),
        }
    });
    let handle = Server::new(factory, ServeConfig::default()).spawn(&socket).expect("spawn server");

    let (faulty, clean) = std::thread::scope(|s| {
        let faulty = s.spawn(|| {
            client_run(&socket, &OpenRequest::new("hung-xml"), std::slice::from_ref(&seeds_faulty))
        });
        let clean = s.spawn(|| {
            client_run(&socket, &OpenRequest::new("xml"), std::slice::from_ref(&seeds_clean))
        });
        (faulty.join().expect("faulty tenant"), clean.join().expect("clean tenant"))
    });

    assert_eq!(faulty.0, faulty_solo_grammar, "faults degrade deterministically");
    assert_eq!(count_fields(&faulty.1), count_fields(&faulty_solo_stats));
    assert!(faulty.1.oracle_failures > 0);

    assert_eq!(clean.0, clean_solo_grammar, "the clean tenant never sees the hang");
    assert_eq!(count_fields(&clean.1), count_fields(&clean_solo_stats));
    assert_eq!(clean.1.oracle_failures, 0, "fault attribution is per tenant");

    handle.shutdown().expect("server shutdown");
}

#[test]
fn shared_flaky_oracle_attributes_faults_per_tenant() {
    let _watchdog = Watchdog::arm("shared_flaky_oracle_attributes_faults_per_tenant");
    let dir = scratch_dir("fault-shared");
    let socket = dir.join("sock");
    let seed_sets: Vec<Vec<Vec<u8>>> =
        vec![vec![b"<a>hi</a>".to_vec()], vec![b"<a><a>deep</a></a>".to_vec()]];

    // Content-addressed faults (crash_permille hashes the query bytes, not
    // a call counter), so each tenant's fault set is a pure function of
    // its own deterministic query stream — even on one shared oracle.
    let plan = || FaultPlan::new().crash_permille(10).seed(7);
    let baselines: Vec<(String, SynthesisStats)> = seed_sets
        .iter()
        .map(|seeds| {
            solo_run(
                &FaultyOracle::new(FnOracle::new(xml_like), plan()),
                std::slice::from_ref(seeds),
            )
        })
        .collect();

    let factory = Arc::new(move |spec: &str| -> Result<(Arc<dyn Oracle>, String), String> {
        match spec {
            "flaky-xml" => Ok((
                Arc::new(FaultyOracle::new(FnOracle::new(xml_like), plan())),
                "test:flaky-xml".into(),
            )),
            other => Err(format!("unknown test spec {other:?}")),
        }
    });
    let handle = Server::new(factory, ServeConfig::default()).spawn(&socket).expect("spawn server");

    let outcomes: Vec<(String, SynthesisStats, Vec<SynthEvent>)> = std::thread::scope(|s| {
        let joins: Vec<_> = seed_sets
            .iter()
            .map(|seeds| {
                let socket = socket.clone();
                s.spawn(move || {
                    client_run(&socket, &OpenRequest::new("flaky-xml"), std::slice::from_ref(seeds))
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().expect("client thread")).collect()
    });

    for (tenant, ((grammar, stats, _), (solo_grammar, solo_stats))) in
        outcomes.iter().zip(&baselines).enumerate()
    {
        assert_eq!(
            grammar, solo_grammar,
            "tenant {tenant}: shared-oracle faults must not change the bytes"
        );
        assert_eq!(
            count_fields(stats),
            count_fields(solo_stats),
            "tenant {tenant}: fault attribution must match the solo run"
        );
    }

    handle.shutdown().expect("server shutdown");
}

#[test]
fn persistent_caches_namespace_by_fingerprint_and_survive_restart() {
    let _watchdog = Watchdog::arm("persistent_caches_namespace_by_fingerprint_and_survive_restart");
    let dir = scratch_dir("cache");
    let socket = dir.join("sock");
    let cache_dir = dir.join("caches");
    std::fs::create_dir_all(&cache_dir).expect("create cache dir");
    let config = ServeConfig { cache_dir: Some(cache_dir.clone()), ..ServeConfig::default() };
    let seeds = vec![b"<a>hi</a>".to_vec()];
    let mut request = OpenRequest::new("xml");
    request.cache = true;

    // Cold run on a fresh server.
    let handle = Server::new(test_factory(), config.clone()).spawn(&socket).expect("first spawn");
    let (cold_grammar, cold_stats, _) = client_run(&socket, &request, std::slice::from_ref(&seeds));
    assert_eq!(cold_stats.new_unique_queries, GOLDEN_UNIQUE_ON, "cold start fills the cache");
    handle.shutdown().expect("first shutdown");

    let cache_files = || {
        let mut files: Vec<_> = std::fs::read_dir(&cache_dir)
            .expect("read cache dir")
            .map(|e| e.expect("dir entry").file_name().into_string().expect("utf-8 name"))
            // The campaign journal shares the directory; only cache
            // snapshots count here.
            .filter(|name| name.ends_with(".glade-cache"))
            .collect();
        files.sort();
        files
    };
    let after_cold = cache_files();
    assert_eq!(after_cold.len(), 1, "one fingerprint, one cache file: {after_cold:?}");
    assert!(after_cold[0].ends_with(".glade-cache"));

    // Warm run on a *new* server over the same cache directory: the
    // snapshot must be found by fingerprint and re-pay nothing.
    let handle = Server::new(test_factory(), config.clone()).spawn(&socket).expect("second spawn");
    let (warm_grammar, warm_stats, _) = client_run(&socket, &request, std::slice::from_ref(&seeds));
    assert_eq!(warm_grammar, cold_grammar, "warm start reproduces the bytes");
    assert_eq!(warm_stats.new_unique_queries, 0, "warm start re-pays no queries");

    // A campaign against a different oracle gets its own namespace: it
    // must start cold and leave a second cache file behind.
    let mut sc_request = OpenRequest::new("xml-sc");
    sc_request.cache = true;
    let (_, sc_stats, _) = client_run(&socket, &sc_request, std::slice::from_ref(&seeds));
    assert!(sc_stats.new_unique_queries > 0, "a different fingerprint never warm-starts");
    handle.shutdown().expect("second shutdown");
    assert_eq!(cache_files().len(), 2, "each fingerprint owns one cache file");
}

#[test]
fn rejected_seeds_and_empty_runs_leave_the_campaign_usable() {
    let _watchdog = Watchdog::arm("rejected_seeds_and_empty_runs_leave_the_campaign_usable");
    let dir = scratch_dir("rejected");
    let socket = dir.join("sock");
    let handle =
        Server::new(test_factory(), ServeConfig::default()).spawn(&socket).expect("spawn server");

    let mut client = ServeClient::connect(&socket).expect("connect");
    client.open(&OpenRequest::new("xml")).expect("open");

    // An empty first batch has nothing to synthesize from.
    let empty = client.synthesize(&[], |_| {}).expect_err("no seeds yet");
    assert_eq!(empty.kind(), std::io::ErrorKind::InvalidData);

    // A seed the oracle rejects errors without poisoning the campaign.
    let rejected = client.synthesize(&[b"<a>HI</a>".to_vec()], |_| {}).expect_err("bad seed");
    assert_eq!(rejected.kind(), std::io::ErrorKind::InvalidData);
    assert!(
        rejected.to_string().contains("reject"),
        "the server's message names the rejection: {rejected}"
    );

    // The same campaign then completes a normal run with the golden pins
    // (+1: the rejected seed's admission check stays in the session cache).
    let outcome = client.synthesize(&[b"<a>hi</a>".to_vec()], |_| {}).expect("recovered run");
    assert_eq!(outcome.stats.unique_queries, GOLDEN_UNIQUE_ON + 1);
    assert_eq!(outcome.stats.total_queries, GOLDEN_TOTAL_ON);
    client.close().expect("close");

    handle.shutdown().expect("server shutdown");
}

#[test]
fn interrupted_campaign_resumes_byte_identical_after_restart() {
    let _watchdog = Watchdog::arm("interrupted_campaign_resumes_byte_identical_after_restart");
    let dir = scratch_dir("resume");
    let socket = dir.join("sock");
    let cache_dir = dir.join("caches");
    std::fs::create_dir_all(&cache_dir).expect("create cache dir");
    let config = ServeConfig { cache_dir: Some(cache_dir.clone()), ..ServeConfig::default() };
    let batches =
        vec![vec![b"<a>hi</a>".to_vec()], vec![b"<a><a>deep</a></a>".to_vec(), b"ok".to_vec()]];
    let (solo_grammar, solo_stats) = solo_run(&FnOracle::new(xml_like), &batches);
    let mut request = OpenRequest::new("xml");
    request.cache = true;

    // Server A: run both batches, then die abruptly — the client never
    // sends CLOSE, so the journal keeps the campaign open.
    let handle = Server::new(test_factory(), config.clone()).spawn(&socket).expect("first spawn");
    let campaign_id = {
        let mut client = ServeClient::connect(&socket).expect("connect");
        let (id, _) = client.open(&request).expect("open");
        let first = client.synthesize(&batches[0], |_| {}).expect("first batch");
        assert_eq!(first.stats.unique_queries, GOLDEN_UNIQUE_ON);
        assert_eq!(first.stats.total_queries, GOLDEN_TOTAL_ON);
        client.synthesize(&batches[1], |_| {}).expect("second batch");
        id
        // `client` drops here without close(), like a killed process.
    };
    handle.shutdown().expect("first shutdown");

    // Server B over the same cache dir offers the campaign for resume.
    let server = Server::new(test_factory(), config.clone());
    assert_eq!(server.resumable_campaigns(), vec![campaign_id], "journal lists the campaign");
    let handle = server.spawn(&socket).expect("second spawn");

    let mut client = ServeClient::connect(&socket).expect("reconnect");
    let (resumed_id, fingerprint) = client.resume(campaign_id).expect("resume");
    assert_eq!(resumed_id, campaign_id);
    assert_eq!(fingerprint, "test:xml-like");
    let replayed = client.resume_result(|_| {}).expect("replay result");
    assert_eq!(replayed.grammar_text, solo_grammar, "resume reproduces the bytes");
    assert_eq!(
        replayed.stats.unique_queries, solo_stats.unique_queries,
        "replay re-runs the same deterministic query stream"
    );
    assert_eq!(
        replayed.stats.new_unique_queries, 0,
        "a checkpointed campaign re-pays no oracle queries on resume"
    );

    // A second claim on the same id must fail (the first client owns it).
    // A rejected RESUME ends that connection, so each probe gets its own.
    let mut second = ServeClient::connect(&socket).expect("second connect");
    let err = second.resume(campaign_id).expect_err("double resume");
    assert!(err.to_string().contains("not resumable"), "claim is exclusive: {err}");
    let mut third = ServeClient::connect(&socket).expect("third connect");
    let err = third.resume(9999).expect_err("unknown id");
    assert!(err.to_string().contains("not resumable"), "unknown ids are rejected: {err}");

    // The resumed campaign keeps serving: an empty batch re-synthesizes.
    let again = client.synthesize(&[], |_| {}).expect("re-synthesis after resume");
    assert_eq!(again.grammar_text, solo_grammar);
    client.close().expect("clean close");
    handle.shutdown().expect("second shutdown");

    // The clean close retired the journal entry: server C offers nothing.
    let server = Server::new(test_factory(), config);
    assert!(server.resumable_campaigns().is_empty(), "closed campaigns are not resumable");
}

#[test]
fn resume_against_a_journalless_server_names_the_missing_journal() {
    let _watchdog = Watchdog::arm("resume_against_a_journalless_server_names_the_missing_journal");
    let dir = scratch_dir("nojournal");
    let socket = dir.join("sock");
    // No cache_dir: the server keeps no journal, so RESUME can never work —
    // the error must say *why* (no journal), not just "unknown campaign".
    let handle =
        Server::new(test_factory(), ServeConfig::default()).spawn(&socket).expect("spawn server");

    let mut client = ServeClient::connect(&socket).expect("connect");
    let err = client.resume(1).expect_err("resume without a journal");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "clean ERROR frame, not a hangup");
    assert!(
        err.to_string().contains("no journal") && err.to_string().contains("--cache-dir"),
        "the error names the missing journal and its cause: {err}"
    );

    handle.shutdown().expect("server shutdown");
}

#[test]
fn serve_cache_format_flip_keeps_warm_starts() {
    let _watchdog = Watchdog::arm("serve_cache_format_flip_keeps_warm_starts");
    let dir = scratch_dir("cachefmt");
    let socket = dir.join("sock");
    let cache_dir = dir.join("caches");
    std::fs::create_dir_all(&cache_dir).expect("create cache dir");
    let seeds = vec![b"<a>hi</a>".to_vec()];
    let mut request = OpenRequest::new("xml");
    request.cache = true;

    // Cold run on a server checkpointing in *text* format.
    let text_config = ServeConfig {
        cache_dir: Some(cache_dir.clone()),
        cache_format: Some(glade_core::CacheFormat::Text),
        ..ServeConfig::default()
    };
    let handle = Server::new(test_factory(), text_config).spawn(&socket).expect("first spawn");
    let (cold_grammar, cold_stats, _) = client_run(&socket, &request, std::slice::from_ref(&seeds));
    assert_eq!(cold_stats.new_unique_queries, GOLDEN_UNIQUE_ON, "cold start fills the cache");
    handle.shutdown().expect("first shutdown");

    let snapshot_is_binary = || {
        let entry = std::fs::read_dir(&cache_dir)
            .expect("read cache dir")
            .map(|e| e.expect("dir entry").path())
            .find(|p| p.extension().is_some_and(|e| e == "glade-cache"))
            .expect("one cache snapshot");
        let bytes = std::fs::read(entry).expect("read snapshot");
        glade_core::is_binary_snapshot(&bytes)
    };
    assert!(!snapshot_is_binary(), "the first server checkpointed in text");

    // Warm run on a server with the default (binary) checkpoint format:
    // the text snapshot loads via format sniffing, re-pays nothing, and
    // the next checkpoint rewrites it as binary.
    let bin_config = ServeConfig { cache_dir: Some(cache_dir.clone()), ..ServeConfig::default() };
    let handle = Server::new(test_factory(), bin_config.clone()).spawn(&socket).expect("respawn");
    let (warm_grammar, warm_stats, _) = client_run(&socket, &request, std::slice::from_ref(&seeds));
    assert_eq!(warm_grammar, cold_grammar, "text snapshot warm-starts a binary server");
    assert_eq!(warm_stats.new_unique_queries, 0, "warm start re-pays no queries");
    handle.shutdown().expect("second shutdown");
    assert!(snapshot_is_binary(), "the binary server rewrote the checkpoint");

    // And back: the binary snapshot warm-starts the next server too.
    let handle = Server::new(test_factory(), bin_config).spawn(&socket).expect("third spawn");
    let (rewarm_grammar, rewarm_stats, _) =
        client_run(&socket, &request, std::slice::from_ref(&seeds));
    assert_eq!(rewarm_grammar, cold_grammar, "binary snapshot reproduces the bytes");
    assert_eq!(rewarm_stats.new_unique_queries, 0, "binary warm start re-pays no queries");
    handle.shutdown().expect("third shutdown");
}

#[test]
fn draining_server_finishes_campaigns_and_rejects_new_ones() {
    let _watchdog = Watchdog::arm("draining_server_finishes_campaigns_and_rejects_new_ones");
    let dir = scratch_dir("drain");
    let socket = dir.join("sock");
    let gate = Arc::new(GateOracle::new(50));
    let (solo_grammar, solo_stats) =
        solo_run(&FnOracle::new(xml_like), &[vec![b"<a>hi</a>".to_vec()]]);

    let factory_gate = Arc::clone(&gate);
    let factory = Arc::new(move |spec: &str| -> Result<(Arc<dyn Oracle>, String), String> {
        match spec {
            "gated-xml" => {
                Ok((Arc::clone(&factory_gate) as Arc<dyn Oracle>, "test:gated-xml".into()))
            }
            "xml" => Ok((Arc::new(FnOracle::new(xml_like)), "test:xml-like".into())),
            other => Err(format!("unknown test spec {other:?}")),
        }
    });
    let handle = Server::new(factory, ServeConfig::default()).spawn(&socket).expect("spawn");

    let mut client_a = ServeClient::connect(&socket).expect("connect A");
    client_a.open(&OpenRequest::new("gated-xml")).expect("open A");
    let mut client_b = ServeClient::connect(&socket).expect("connect B");

    let outcome = std::thread::scope(|s| {
        let running = s.spawn(move || {
            let outcome = client_a.synthesize(&[b"<a>hi</a>".to_vec()], |_| {}).expect("run A");
            // A draining server retires the connection the instant the
            // final result is flushed — it must not wait on a client that
            // might never say goodbye — so this CLOSE can lose the race
            // and hit a closed socket. Best-effort by design.
            let _ = client_a.close();
            outcome
        });
        gate.wait_until_parked();
        // The campaign is provably mid-flight. Drain now.
        handle.drain();
        // Give the accept loop a poll cycle to observe the drain flag,
        // then verify new work is refused on an already-open connection.
        std::thread::sleep(std::time::Duration::from_millis(400));
        let err = client_b.open(&OpenRequest::new("xml")).expect_err("open while draining");
        assert!(err.to_string().contains("drain"), "rejection names the drain: {err}");
        gate.release();
        running.join().expect("running campaign thread")
    });

    // The in-flight campaign finished normally under drain — full result,
    // no cancellation, byte-identical grammar.
    assert!(!outcome.stats.cancelled, "draining must not cancel a finishing campaign");
    assert_eq!(outcome.grammar_text, solo_grammar);
    assert_eq!(count_fields(&outcome.stats), count_fields(&solo_stats));

    // With every connection retired the drained loop exits on its own and
    // unlinks the socket.
    handle.wait().expect("drained server exits cleanly");
    assert!(!socket.exists(), "drained server unlinks its socket");
}

#[test]
fn slow_reader_is_demoted_to_result_only() {
    let _watchdog = Watchdog::arm("slow_reader_is_demoted_to_result_only");
    let dir = scratch_dir("demote");
    let socket = dir.join("sock");
    let seeds = vec![b"<a>hi</a>".to_vec()];
    let (solo_grammar, solo_stats) =
        solo_run(&FnOracle::new(xml_like), std::slice::from_ref(&seeds));

    // `max_event_buffer: 0` is the deterministic worst case: every reader
    // is "too slow" immediately, so the whole event stream must collapse
    // into one events-dropped notice without perturbing the campaign.
    let config = ServeConfig { max_event_buffer: Some(0), ..ServeConfig::default() };
    let handle = Server::new(test_factory(), config).spawn(&socket).expect("spawn");

    let (grammar, stats, events) =
        client_run(&socket, &OpenRequest::new("xml"), std::slice::from_ref(&seeds));
    assert_eq!(grammar, solo_grammar, "demotion never changes the grammar bytes");
    assert_eq!(count_fields(&stats), count_fields(&solo_stats));
    assert_eq!(stats.unique_queries, GOLDEN_UNIQUE_ON);
    assert_eq!(
        events.len(),
        1,
        "a demoted connection gets exactly one events-dropped notice: {events:?}"
    );
    let SynthEvent::EventsDropped { dropped } = events[0] else {
        panic!("expected an events-dropped notice, got {:?}", events[0]);
    };
    assert!(dropped > 0, "the notice counts the losses");

    handle.shutdown().expect("shutdown");
}

/// Writes one `glade-serve` frame (length prefix + tag + body) raw.
fn write_raw_frame(stream: &mut std::os::unix::net::UnixStream, tag: u8, body: &[u8]) {
    use std::io::Write as _;
    let mut payload = Vec::with_capacity(1 + body.len());
    payload.push(tag);
    payload.extend_from_slice(body);
    stream.write_all(&u32::try_from(payload.len()).unwrap().to_le_bytes()).expect("write len");
    stream.write_all(&payload).expect("write payload");
}

/// Reads one raw frame: (tag, body).
fn read_raw_frame(stream: &mut std::os::unix::net::UnixStream) -> (u8, Vec<u8>) {
    use std::io::Read as _;
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).expect("read len");
    let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
    stream.read_exact(&mut payload).expect("read payload");
    let body = payload.split_off(1);
    (payload[0], body)
}

#[test]
fn v1_clients_still_interoperate() {
    let _watchdog = Watchdog::arm("v1_clients_still_interoperate");
    let dir = scratch_dir("v1-compat");
    let socket = dir.join("sock");
    let handle = Server::new(test_factory(), ServeConfig::default()).spawn(&socket).expect("spawn");

    // A hand-rolled v1 session: the v2 server accepts the old banner and
    // echoes it back, and every v1 frame behaves as before.
    let mut stream = std::os::unix::net::UnixStream::connect(&socket).expect("connect");
    write_raw_frame(&mut stream, 0x01, b"glade-serve v1");
    let (tag, body) = read_raw_frame(&mut stream);
    assert_eq!(tag, 0x81, "HELLO_ACK");
    assert_eq!(body, b"glade-serve v1", "the server echoes the v1 banner to a v1 client");
    write_raw_frame(&mut stream, 0x02, b"oracle xml\n");
    let (tag, body) = read_raw_frame(&mut stream);
    assert_eq!(tag, 0x82, "OPEN_ACK");
    assert!(body.len() > 4, "OPEN_ACK carries id + fingerprint");
    write_raw_frame(&mut stream, 0x05, b"");

    // An unrecognized banner is still refused.
    let mut bad = std::os::unix::net::UnixStream::connect(&socket).expect("connect bad");
    write_raw_frame(&mut bad, 0x01, b"glade-serve v3");
    let (tag, body) = read_raw_frame(&mut bad);
    assert_eq!(tag, 0x85, "ERROR");
    assert!(String::from_utf8_lossy(&body).contains("protocol"));

    handle.shutdown().expect("shutdown");
}

#[test]
fn unknown_oracle_specs_are_rejected_by_name() {
    let _watchdog = Watchdog::arm("unknown_oracle_specs_are_rejected_by_name");
    let dir = scratch_dir("unknown-spec");
    let socket = dir.join("sock");
    let handle =
        Server::new(test_factory(), ServeConfig::default()).spawn(&socket).expect("spawn server");

    let mut client = ServeClient::connect(&socket).expect("connect");
    let err = client.open(&OpenRequest::new("no-such-spec")).expect_err("unknown spec");
    assert!(err.to_string().contains("no-such-spec"), "the error names the spec: {err}");

    handle.shutdown().expect("server shutdown");
}
