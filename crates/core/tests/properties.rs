//! Property-based tests of the synthesis pipeline's invariants, driven by
//! random regular target languages (small random DFAs over {a, b}).

use glade_core::{FnOracle, GladeBuilder};
use glade_grammar::{grammar_to_text, Earley};
use proptest::prelude::*;

/// A small complete DFA over {a, b} encoded as transition/accept tables.
#[derive(Debug, Clone)]
struct TinyDfa {
    trans: Vec<[u8; 2]>,
    accept: Vec<bool>,
}

impl TinyDfa {
    fn accepts(&self, input: &[u8]) -> bool {
        let mut s = 0usize;
        for &b in input {
            let a = match b {
                b'a' => 0,
                b'b' => 1,
                _ => return false,
            };
            s = self.trans[s][a] as usize;
        }
        self.accept[s]
    }

    /// Finds some accepted string by BFS (shortest member), if any.
    fn shortest_member(&self) -> Option<Vec<u8>> {
        use std::collections::VecDeque;
        let n = self.trans.len();
        let mut seen = vec![false; n];
        let mut queue = VecDeque::from([(0usize, Vec::new())]);
        seen[0] = true;
        while let Some((s, w)) = queue.pop_front() {
            if self.accept[s] {
                return Some(w);
            }
            for (i, &t) in self.trans[s].iter().enumerate() {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    let mut w2 = w.clone();
                    w2.push(if i == 0 { b'a' } else { b'b' });
                    queue.push_back((t as usize, w2));
                }
            }
        }
        None
    }
}

fn arb_dfa() -> impl Strategy<Value = TinyDfa> {
    (2usize..5).prop_flat_map(|n| {
        let trans =
            proptest::collection::vec((0..n as u8, 0..n as u8).prop_map(|(x, y)| [x, y]), n..=n);
        let accept = proptest::collection::vec(any::<bool>(), n..=n);
        (trans, accept).prop_map(|(trans, accept)| TinyDfa { trans, accept })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Monotonicity (Proposition 4.1 and the phase-2 monotonicity): the
    /// seed input is always a member of the synthesized grammar.
    #[test]
    fn seed_is_always_member(dfa in arb_dfa()) {
        let Some(seed) = dfa.shortest_member() else { return Ok(()) };
        let d = dfa.clone();
        let oracle = FnOracle::new(move |w: &[u8]| d.accepts(w));
        let result =
            GladeBuilder::new().synthesize(std::slice::from_ref(&seed), &oracle).expect("seed valid");
        prop_assert!(Earley::new(&result.grammar).accepts(&seed));
    }

    /// Synthesis is deterministic: same seeds + same oracle ⇒ identical
    /// grammar.
    #[test]
    fn synthesis_is_deterministic(dfa in arb_dfa()) {
        let Some(seed) = dfa.shortest_member() else { return Ok(()) };
        let d1 = dfa.clone();
        let d2 = dfa.clone();
        let o1 = FnOracle::new(move |w: &[u8]| d1.accepts(w));
        let o2 = FnOracle::new(move |w: &[u8]| d2.accepts(w));
        let r1 = GladeBuilder::new().synthesize(std::slice::from_ref(&seed), &o1).expect("valid");
        let r2 = GladeBuilder::new().synthesize(&[seed], &o2).expect("valid");
        prop_assert_eq!(grammar_to_text(&r1.grammar), grammar_to_text(&r2.grammar));
    }

    /// Budget exhaustion degrades gracefully: the seed never falls out of
    /// the language no matter how tight the query budget is.
    #[test]
    fn budget_never_loses_seed(dfa in arb_dfa(), budget in 0usize..60) {
        let Some(seed) = dfa.shortest_member() else { return Ok(()) };
        let d = dfa.clone();
        let oracle = FnOracle::new(move |w: &[u8]| d.accepts(w));
        let result = GladeBuilder::new()
            .max_queries(budget)
            .synthesize(std::slice::from_ref(&seed), &oracle)
            .expect("seed valid");
        prop_assert!(Earley::new(&result.grammar).accepts(&seed));
    }

    /// Multi-seed synthesis keeps every seed in the language (Section 6.1).
    #[test]
    fn all_seeds_stay_members(dfa in arb_dfa(),
                              extra in proptest::collection::vec(
                                  proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b')], 0..6),
                                  0..3)) {
        let Some(first) = dfa.shortest_member() else { return Ok(()) };
        let d0 = dfa.clone();
        // Keep only extras the oracle actually accepts.
        let mut seeds = vec![first];
        for e in extra {
            if d0.accepts(&e) && !seeds.contains(&e) {
                seeds.push(e);
            }
        }
        let d = dfa.clone();
        let oracle = FnOracle::new(move |w: &[u8]| d.accepts(w));
        let result = GladeBuilder::new().synthesize(&seeds, &oracle).expect("seeds valid");
        let parser = Earley::new(&result.grammar);
        for s in &seeds {
            prop_assert!(parser.accepts(s), "lost seed {:?}", s);
        }
    }

    /// The phase-1 regex view and the no-merge grammar agree (translation
    /// soundness, Section 5.1): with phase 2 disabled, the CFG and the
    /// regex accept the same strings.
    #[test]
    fn p1_grammar_equals_regex(dfa in arb_dfa(),
                               probe in proptest::collection::vec(
                                   prop_oneof![Just(b'a'), Just(b'b')], 0..8)) {
        let Some(seed) = dfa.shortest_member() else { return Ok(()) };
        let d = dfa.clone();
        let oracle = FnOracle::new(move |w: &[u8]| d.accepts(w));
        let result = GladeBuilder::new().phase2(false).synthesize(&[seed], &oracle).expect("valid");
        let parser = Earley::new(&result.grammar);
        prop_assert_eq!(parser.accepts(&probe), result.regex.is_match(&probe));
    }
}
