//! Property-based tests of the cache snapshot codecs: the text and binary
//! formats must be lossless, mutually equivalent, byte-stable across
//! re-serialization, and *clean* under truncation — a torn binary
//! snapshot may only ever produce a [`CacheError`], never a panic or a
//! silently short load. The indexed partial-load path
//! ([`BinaryCacheFile`]) must agree with a full load on every key.

use glade_core::{
    is_binary_snapshot, snapshot_from_binary, snapshot_from_reader, snapshot_from_text,
    snapshot_to_binary, snapshot_to_text_with_memo, BinaryCacheFile, CacheSnapshot, MemoEntry,
};
use glade_grammar::CharClass;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Distinct queries with arbitrary bytes (including empty and non-UTF-8),
/// in the sorted order every serializer normalizes to.
fn arb_entries() -> impl Strategy<Value = Vec<(Vec<u8>, bool)>> {
    proptest::collection::vec((proptest::collection::vec(any::<u8>(), 0..24), any::<bool>()), 0..40)
        .prop_map(|raw| {
            // Last verdict wins on duplicate queries, matching cache
            // semantics; BTreeMap yields the canonical sorted order.
            raw.into_iter().collect::<std::collections::BTreeMap<_, _>>().into_iter().collect()
        })
}

/// Memo entries with distinct keys; every byte class has at least one
/// member (the memo layer never records an empty class).
fn arb_memo() -> impl Strategy<Value = Vec<MemoEntry>> {
    let class = proptest::collection::vec(any::<u8>(), 1..6).prop_map(|members| {
        let set: std::collections::BTreeSet<u8> = members.into_iter().collect();
        let bytes: Vec<u8> = set.into_iter().collect();
        CharClass::from_bytes(&bytes)
    });
    let key = proptest::collection::vec(any::<u8>(), 16usize..=16)
        .prop_map(|k| <[u8; 16]>::try_from(k).expect("sixteen bytes"));
    proptest::collection::vec((key, proptest::collection::vec(class, 1..4)), 0..5).prop_map(|raw| {
        raw.into_iter()
            .map(|(key, classes)| (key, MemoEntry { key, classes }))
            .collect::<std::collections::BTreeMap<_, _>>()
            .into_values()
            .collect()
    })
}

/// Optional nonempty fingerprint (an empty fingerprint is not a thing —
/// both formats encode "no fingerprint" as its absence).
fn arb_fingerprint() -> impl Strategy<Value = Option<String>> {
    (any::<bool>(), proptest::collection::vec(any::<u8>(), 1..12))
        .prop_map(|(present, bytes)| present.then(|| String::from_utf8_lossy(&bytes).into_owned()))
}

/// The canonical form both decoders must produce: entries sorted by query
/// bytes, memo sorted by key (generator output is already sorted).
fn expected(entries: &[(Vec<u8>, bool)], memo: &[MemoEntry], fp: &Option<String>) -> CacheSnapshot {
    CacheSnapshot {
        oracle_fingerprint: fp.clone(),
        entries: entries.to_vec().into(),
        memo: memo.to_vec(),
    }
}

fn scratch_file(bytes: &[u8]) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let path = std::env::temp_dir().join(format!(
        "glade-persist-prop-{}-{}.bin",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&path, bytes).expect("write scratch snapshot");
    path
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Binary roundtrip is lossless, and re-serializing the parse is
    /// byte-identical (the format is canonical: one cache, one encoding).
    #[test]
    fn binary_roundtrip_is_lossless_and_byte_stable(
        entries in arb_entries(), memo in arb_memo(), fp in arb_fingerprint()
    ) {
        let bytes = snapshot_to_binary(&entries, &memo, fp.as_deref());
        prop_assert!(is_binary_snapshot(&bytes));
        let parsed = snapshot_from_binary(&bytes).expect("roundtrip parses");
        prop_assert_eq!(&parsed, &expected(&entries, &memo, &fp));
        let again =
            snapshot_to_binary(&parsed.entries.to_vec(), &parsed.memo, parsed.oracle_fingerprint.as_deref());
        prop_assert_eq!(again, bytes);
    }

    /// The text and binary codecs decode to the same snapshot — flipping
    /// a cache file's format can never change a verdict, a memo class, or
    /// the fingerprint.
    #[test]
    fn text_and_binary_formats_are_equivalent(
        entries in arb_entries(), memo in arb_memo(), fp in arb_fingerprint()
    ) {
        let text = snapshot_to_text_with_memo(&entries, &memo, fp.as_deref());
        prop_assert!(!is_binary_snapshot(text.as_bytes()));
        let from_text = snapshot_from_text(&text).expect("text parses");
        let from_reader = snapshot_from_reader(text.as_bytes()).expect("reader parses");
        let bin = snapshot_to_binary(&entries, &memo, fp.as_deref());
        let from_binary = snapshot_from_binary(&bin).expect("binary parses");
        prop_assert_eq!(&from_text, &from_binary);
        prop_assert_eq!(&from_reader, &from_binary);
        prop_assert_eq!(&from_binary, &expected(&entries, &memo, &fp));
    }

    /// Truncating a binary snapshot at *any* byte boundary is a clean
    /// [`CacheError`](glade_core::CacheError) — never a panic, and never
    /// a successful short parse (the header's redundant offsets make
    /// every cut detectable).
    #[test]
    fn binary_truncation_at_any_cut_is_a_clean_error(
        entries in arb_entries(), memo in arb_memo(), fp in arb_fingerprint()
    ) {
        let bytes = snapshot_to_binary(&entries, &memo, fp.as_deref());
        for cut in 0..bytes.len() {
            prop_assert!(
                snapshot_from_binary(&bytes[..cut]).is_err(),
                "truncation to {cut}/{} bytes must not parse",
                bytes.len()
            );
        }
    }

    /// The indexed on-disk lookup path agrees with a full load: every
    /// stored query answers its verdict, absent queries answer `None`,
    /// and the eagerly-loaded memo section matches.
    #[test]
    fn indexed_lookups_agree_with_full_load(
        entries in arb_entries(), memo in arb_memo(), fp in arb_fingerprint(),
        absents in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..24), 0..8)
    ) {
        let bytes = snapshot_to_binary(&entries, &memo, fp.as_deref());
        let path = scratch_file(&bytes);
        let mut file = BinaryCacheFile::open(&path).expect("open snapshot");
        prop_assert_eq!(file.len(), entries.len());
        prop_assert_eq!(file.memo_len(), memo.len());
        prop_assert_eq!(file.fingerprint(), fp.as_deref());
        for (query, verdict) in &entries {
            prop_assert_eq!(file.lookup(query).expect("lookup"), Some(*verdict));
        }
        for query in &absents {
            let stored = entries.iter().find(|(q, _)| q == query).map(|(_, v)| *v);
            prop_assert_eq!(file.lookup(query).expect("absent lookup"), stored);
        }
        let loaded_memo = file.load_memo().expect("load memo");
        prop_assert_eq!(loaded_memo, memo);
        drop(file);
        let _ = std::fs::remove_file(&path);
    }
}
