//! Property-based battery for the v2 batched-frame codec (`glade_core::wire`)
//! and its fail-closed decoding contract: arbitrary query batches
//! round-trip byte-identically, and malformed / truncated / oversized
//! frames are typed errors — never a panic, never a fabricated verdict.
//!
//! The process-level half of the same contract (a worker that receives a
//! malformed frame exits nonzero and the pool counts oracle failures
//! rather than inventing `false` verdicts) is pinned in `parallel.rs`
//! against an independently implemented worker binary.

use glade_core::wire::{
    decode_batch_frame, encode_batch_frame, encode_v1_frame, FrameError, MAX_FRAME_QUERIES,
    WIRE_V2_ACK, WIRE_V2_PROBE,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// An arbitrary query: arbitrary bytes, length skewed toward the small
/// sizes the engine actually poses but reaching into the kilobytes.
fn arb_query() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        4 => vec(any::<u8>(), 0..32),
        2 => vec(any::<u8>(), 32..256),
        1 => vec(any::<u8>(), 256..4096),
    ]
}

/// An arbitrary nonempty batch (the protocol forbids empty frames).
fn arb_batch() -> impl Strategy<Value = Vec<Vec<u8>>> {
    vec(arb_query(), 1..48)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn batch_frames_roundtrip_byte_identically(batch in arb_batch()) {
        let refs: Vec<&[u8]> = batch.iter().map(Vec::as_slice).collect();
        let mut encoded = Vec::new();
        encode_batch_frame(&refs, &mut encoded).expect("legal batch encodes");
        let decoded = decode_batch_frame(&mut &encoded[..]).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &batch);
        // The encoding is canonical: re-encoding the decoded batch
        // reproduces the exact frame bytes.
        let decoded_refs: Vec<&[u8]> = decoded.iter().map(Vec::as_slice).collect();
        let mut reencoded = Vec::new();
        encode_batch_frame(&decoded_refs, &mut reencoded).expect("re-encodes");
        prop_assert_eq!(&reencoded, &encoded);
    }

    #[test]
    fn consecutive_frames_decode_in_order(a in arb_batch(), b in arb_batch()) {
        // The worker loop reads frames back to back off one stream; frame
        // boundaries must self-delimit.
        let refs_a: Vec<&[u8]> = a.iter().map(Vec::as_slice).collect();
        let refs_b: Vec<&[u8]> = b.iter().map(Vec::as_slice).collect();
        let mut stream = Vec::new();
        encode_batch_frame(&refs_a, &mut stream).expect("encodes");
        encode_batch_frame(&refs_b, &mut stream).expect("encodes");
        let mut reader = &stream[..];
        prop_assert_eq!(&decode_batch_frame(&mut reader).expect("first frame"), &a);
        prop_assert_eq!(&decode_batch_frame(&mut reader).expect("second frame"), &b);
        prop_assert!(reader.is_empty(), "no trailing bytes");
    }

    #[test]
    fn truncated_frames_fail_closed_with_eof(batch in arb_batch(), cut_seed in any::<proptest::sample::Index>()) {
        let refs: Vec<&[u8]> = batch.iter().map(Vec::as_slice).collect();
        let mut encoded = Vec::new();
        encode_batch_frame(&refs, &mut encoded).expect("encodes");
        // Any strict prefix is a truncated frame: always an error (an
        // UnexpectedEof read failure), never a short parse or a panic.
        let cut = cut_seed.index(encoded.len());
        match decode_batch_frame(&mut &encoded[..cut]) {
            Err(FrameError::Io(e)) => {
                prop_assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof, "cut={}", cut)
            }
            Err(other) => prop_assert!(false, "cut={}: unexpected error {other}", cut),
            Ok(q) => prop_assert!(false, "cut={}: decoded {} queries from a truncation", cut, q.len()),
        }
    }

    #[test]
    fn corrupted_count_prefix_never_panics(batch in arb_batch(), corrupt in any::<u32>()) {
        // Overwrite the frame's query count with garbage: decoding must
        // produce a typed error or a (different) successful parse of the
        // remaining bytes — never a panic and never an absurd allocation.
        let refs: Vec<&[u8]> = batch.iter().map(Vec::as_slice).collect();
        let mut encoded = Vec::new();
        encode_batch_frame(&refs, &mut encoded).expect("encodes");
        encoded[..4].copy_from_slice(&corrupt.to_le_bytes());
        match decode_batch_frame(&mut &encoded[..]) {
            Err(FrameError::TooManyQueries(n)) => prop_assert!(n > MAX_FRAME_QUERIES),
            Err(FrameError::EmptyFrame) => prop_assert_eq!(corrupt, 0),
            // Smaller/equal counts may still parse (a prefix of the
            // queries) or hit EOF / the size caps — all fail-closed.
            Err(FrameError::Io(_)) | Err(FrameError::FrameTooLarge(_)) => {}
            Ok(qs) => prop_assert_eq!(qs.len() as u32, corrupt),
            Err(other) => prop_assert!(false, "unexpected error {other}"),
        }
    }

    #[test]
    fn oversized_declared_lengths_are_rejected_before_allocation(count in 1u32..4, declared in (1u64 << 30)+1 .. u32::MAX as u64) {
        // A frame whose length prefixes promise more payload than the
        // protocol cap must be rejected from the prefixes alone.
        let mut frame = Vec::new();
        frame.extend_from_slice(&count.to_le_bytes());
        frame.extend_from_slice(&(declared as u32).to_le_bytes());
        // Deliberately provide no payload: if the cap check did not fire
        // first, decoding would try to allocate `declared` bytes.
        match decode_batch_frame(&mut &frame[..]) {
            Err(FrameError::FrameTooLarge(n)) => prop_assert_eq!(n, declared),
            other => prop_assert!(false, "expected FrameTooLarge, got {:?}", other.map(|q| q.len())),
        }
    }

    #[test]
    fn v1_frames_roundtrip_through_the_legacy_layout(query in arb_query()) {
        let mut encoded = Vec::new();
        encode_v1_frame(&query, &mut encoded).expect("encodes");
        prop_assert_eq!(encoded.len(), 4 + query.len());
        prop_assert_eq!(u32::from_le_bytes(encoded[..4].try_into().unwrap()) as usize, query.len());
        prop_assert_eq!(&encoded[4..], &query[..]);
    }

    #[test]
    fn probe_never_collides_with_small_engine_queries(query in arb_query()) {
        // The negotiation probe must be recognizable unambiguously; the
        // generator's arbitrary bytes stand in for engine-made queries.
        // (Not a proof — the real guarantee is the leading NUL NUL pair,
        // which no text-protocol target accepts — but a cheap tripwire.)
        if query != WIRE_V2_PROBE {
            let refs: Vec<&[u8]> = vec![&query];
            let mut encoded = Vec::new();
            encode_batch_frame(&refs, &mut encoded).expect("encodes");
            prop_assert!(encoded[8..] != WIRE_V2_PROBE[..] || query == WIRE_V2_PROBE);
        }
    }
}

#[test]
fn empty_batches_are_illegal_on_both_sides() {
    let mut out = Vec::new();
    assert!(matches!(encode_batch_frame(&[], &mut out), Err(FrameError::EmptyFrame)));
    assert!(out.is_empty(), "failed encodes leave the buffer untouched");
    let zero = 0u32.to_le_bytes();
    assert!(matches!(decode_batch_frame(&mut &zero[..]), Err(FrameError::EmptyFrame)));
}

#[test]
fn too_many_queries_rejected_at_encode_time() {
    let one: &[u8] = b"q";
    let queries: Vec<&[u8]> = vec![one; MAX_FRAME_QUERIES + 1];
    let mut out = Vec::new();
    match encode_batch_frame(&queries, &mut out) {
        Err(FrameError::TooManyQueries(n)) => assert_eq!(n, MAX_FRAME_QUERIES + 1),
        other => panic!("expected TooManyQueries, got {:?}", other.map(|()| "ok")),
    }
    assert!(out.is_empty());
}

#[test]
#[allow(clippy::assertions_on_constants)]
fn ack_byte_is_outside_the_verdict_range() {
    // The negotiation contract: v1 verdicts are 0x00/0x01, so the upgrade
    // ack must be distinguishable from both.
    assert!(WIRE_V2_ACK != 0 && WIRE_V2_ACK != 1);
    // And the probe itself frames as a legal v1 query (that is exactly
    // what a v1-only worker will take it for).
    let mut framed = Vec::new();
    encode_v1_frame(WIRE_V2_PROBE, &mut framed).expect("probe frames");
    assert_eq!(&framed[4..], WIRE_V2_PROBE);
}
