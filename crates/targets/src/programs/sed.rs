//! Instrumented stand-in for GNU sed's script parser.
//!
//! Accepts the classic sed script language: optional addresses (line
//! numbers, `$`, `/regex/`), one-letter commands (`d p q = l h H g G x n N
//! D P`), substitution `s/RE/replacement/flags`, transliteration
//! `y/abc/xyz/`, text commands `a\ i\ c\`, labels and branches
//! (`: label`, `b`, `t`), and `{ … }` groups. An input is *valid* iff the
//! whole script parses.

use crate::cov;
use crate::cov::{count_points, Coverage, RunOutcome};
use crate::target::Target;

const SRC: &str = include_str!("sed.rs");

/// The sed target program.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sed;

impl Target for Sed {
    fn name(&self) -> &'static str {
        "sed"
    }

    fn run(&self, input: &[u8]) -> RunOutcome {
        let mut p = Parser { s: input, i: 0, cov: Coverage::new(), depth: 0 };
        let valid = p.script();
        RunOutcome { valid, coverage: p.cov }
    }

    fn coverable_lines(&self) -> usize {
        count_points(SRC)
    }

    fn source_lines(&self) -> usize {
        SRC.lines().count()
    }

    fn seeds(&self) -> Vec<Vec<u8>> {
        [&b"s/cat/dog/g"[..], b"1,5d\n/err/p\nq", b"y/abc/xyz/\n$=\n3{p\nd\n}"]
            .iter()
            .map(|s| s.to_vec())
            .collect()
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
    cov: Coverage,
    depth: u32,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.i += 1;
        Some(b)
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn skip_blanks(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.i += 1;
        }
    }

    fn script(&mut self) -> bool {
        cov!(self.cov);
        loop {
            self.skip_blanks();
            match self.peek() {
                None => {
                    cov!(self.cov);
                    return self.depth == 0;
                }
                Some(b'\n') | Some(b';') => {
                    cov!(self.cov);
                    self.i += 1;
                }
                Some(b'#') => {
                    cov!(self.cov);
                    while self.peek().is_some_and(|b| b != b'\n') {
                        self.i += 1;
                    }
                }
                Some(b'}') => {
                    cov!(self.cov);
                    if self.depth == 0 {
                        return false;
                    }
                    self.depth -= 1;
                    self.i += 1;
                }
                _ => {
                    cov!(self.cov);
                    if !self.command() {
                        return false;
                    }
                }
            }
        }
    }

    fn command(&mut self) -> bool {
        cov!(self.cov);
        if self.address() {
            cov!(self.cov);
            self.skip_blanks();
            if self.eat(b',') {
                cov!(self.cov);
                self.skip_blanks();
                if !self.address() {
                    return false;
                }
                self.skip_blanks();
            }
            // An address may be negated with '!'.
            if self.eat(b'!') {
                cov!(self.cov);
                self.skip_blanks();
            }
        }
        match self.bump() {
            Some(b'{') => {
                cov!(self.cov);
                self.depth += 1;
                true
            }
            Some(
                b'd' | b'p' | b'q' | b'=' | b'l' | b'h' | b'H' | b'g' | b'G' | b'x' | b'n' | b'N'
                | b'D' | b'P' | b'F' | b'z',
            ) => {
                cov!(self.cov);
                self.end_of_command()
            }
            Some(b's') => {
                cov!(self.cov);
                self.substitute()
            }
            Some(b'y') => {
                cov!(self.cov);
                self.transliterate()
            }
            Some(b'a' | b'i' | b'c') => {
                cov!(self.cov);
                self.text_command()
            }
            Some(b':') => {
                cov!(self.cov);
                self.label(true)
            }
            Some(b'b' | b't' | b'T') => {
                cov!(self.cov);
                self.label(false)
            }
            Some(b'r' | b'w' | b'R' | b'W') => {
                cov!(self.cov);
                self.filename()
            }
            _ => {
                cov!(self.cov);
                false
            }
        }
    }

    fn address(&mut self) -> bool {
        match self.peek() {
            Some(b'0'..=b'9') => {
                cov!(self.cov);
                while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    self.i += 1;
                }
                // GNU step addresses: first~step.
                if self.eat(b'~') {
                    cov!(self.cov);
                    if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
                        // Leave the parse position; command() will fail.
                        return true;
                    }
                    while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                        self.i += 1;
                    }
                }
                true
            }
            Some(b'$') => {
                cov!(self.cov);
                self.i += 1;
                true
            }
            Some(b'/') => {
                cov!(self.cov);
                self.i += 1;
                self.regex_until(b'/')
            }
            _ => false,
        }
    }

    /// Scans a regular expression body up to an unescaped `delim`,
    /// validating bracket expressions. Consumes the delimiter.
    fn regex_until(&mut self, delim: u8) -> bool {
        cov!(self.cov);
        loop {
            match self.bump() {
                None | Some(b'\n') => {
                    cov!(self.cov);
                    return false;
                }
                Some(b'\\') => {
                    cov!(self.cov);
                    if self.bump().is_none() {
                        return false;
                    }
                }
                Some(b'[') => {
                    cov!(self.cov);
                    if !self.bracket_expression() {
                        return false;
                    }
                }
                Some(b) if b == delim => {
                    cov!(self.cov);
                    return true;
                }
                Some(_) => {}
            }
        }
    }

    fn bracket_expression(&mut self) -> bool {
        cov!(self.cov);
        if self.eat(b'^') {
            cov!(self.cov);
        }
        // A leading ']' is a literal member.
        if self.eat(b']') {
            cov!(self.cov);
        }
        loop {
            match self.bump() {
                None | Some(b'\n') => {
                    cov!(self.cov);
                    return false;
                }
                Some(b']') => {
                    cov!(self.cov);
                    return true;
                }
                Some(b'[') => {
                    // Possible [:class:] element.
                    if self.eat(b':') {
                        cov!(self.cov);
                        while self.peek().is_some_and(|b| b.is_ascii_lowercase()) {
                            self.i += 1;
                        }
                        if !(self.eat(b':') && self.eat(b']')) {
                            return false;
                        }
                    }
                }
                Some(_) => {}
            }
        }
    }

    fn substitute(&mut self) -> bool {
        cov!(self.cov);
        let Some(delim) = self.bump() else { return false };
        if delim == b'\n' || delim == b'\\' {
            cov!(self.cov);
            return false;
        }
        if !self.regex_until(delim) {
            return false;
        }
        // Replacement: up to unescaped delimiter.
        cov!(self.cov);
        loop {
            match self.bump() {
                None | Some(b'\n') => {
                    cov!(self.cov);
                    return false;
                }
                Some(b'\\') => {
                    cov!(self.cov);
                    if self.bump().is_none() {
                        return false;
                    }
                }
                Some(b) if b == delim => {
                    cov!(self.cov);
                    break;
                }
                Some(_) => {}
            }
        }
        // Flags.
        loop {
            match self.peek() {
                Some(b'g' | b'p' | b'i' | b'I' | b'm' | b'M' | b'e') => {
                    cov!(self.cov);
                    self.i += 1;
                }
                Some(b'0'..=b'9') => {
                    cov!(self.cov);
                    while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                        self.i += 1;
                    }
                }
                Some(b'w') => {
                    cov!(self.cov);
                    self.i += 1;
                    return self.filename();
                }
                _ => break,
            }
        }
        self.end_of_command()
    }

    fn transliterate(&mut self) -> bool {
        cov!(self.cov);
        let Some(delim) = self.bump() else { return false };
        if delim == b'\n' || delim == b'\\' {
            return false;
        }
        let src = self.translit_part(delim);
        let Some(src_len) = src else { return false };
        let dst = self.translit_part(delim);
        let Some(dst_len) = dst else { return false };
        // POSIX: both strings must have the same length.
        if src_len != dst_len {
            cov!(self.cov);
            return false;
        }
        self.end_of_command()
    }

    /// Scans one `y` segment up to the delimiter, returning its length.
    fn translit_part(&mut self, delim: u8) -> Option<usize> {
        cov!(self.cov);
        let mut len = 0usize;
        loop {
            match self.bump() {
                None | Some(b'\n') => return None,
                Some(b'\\') => {
                    cov!(self.cov);
                    self.bump()?;
                    len += 1;
                }
                Some(b) if b == delim => return Some(len),
                Some(_) => len += 1,
            }
        }
    }

    fn text_command(&mut self) -> bool {
        cov!(self.cov);
        self.skip_blanks();
        // Either `a\` + newline + text, or GNU one-liner `a text`.
        if self.eat(b'\\') {
            cov!(self.cov);
            if !self.eat(b'\n') {
                return false;
            }
        }
        // Text runs to end of line; backslash-newline continues it.
        loop {
            match self.peek() {
                None => {
                    cov!(self.cov);
                    return true;
                }
                Some(b'\n') => {
                    cov!(self.cov);
                    return true;
                }
                Some(b'\\') => {
                    cov!(self.cov);
                    self.i += 1;
                    if self.peek().is_some() {
                        self.i += 1;
                    }
                }
                Some(_) => self.i += 1,
            }
        }
    }

    fn label(&mut self, required: bool) -> bool {
        cov!(self.cov);
        self.skip_blanks();
        let start = self.i;
        while self.peek().is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_') {
            self.i += 1;
        }
        if required && self.i == start {
            cov!(self.cov);
            return false;
        }
        self.end_of_command()
    }

    fn filename(&mut self) -> bool {
        cov!(self.cov);
        self.skip_blanks();
        let start = self.i;
        while self.peek().is_some_and(|b| b != b'\n') {
            self.i += 1;
        }
        self.i > start
    }

    fn end_of_command(&mut self) -> bool {
        self.skip_blanks();
        matches!(self.peek(), None | Some(b'\n') | Some(b';') | Some(b'}'))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid(s: &[u8]) -> bool {
        Sed.run(s).valid
    }

    #[test]
    fn seeds_are_valid() {
        for s in Sed.seeds() {
            assert!(valid(&s), "seed {:?}", String::from_utf8_lossy(&s));
        }
    }

    #[test]
    fn simple_commands() {
        assert!(valid(b"d"));
        assert!(valid(b"p"));
        assert!(valid(b"q"));
        assert!(valid(b"="));
        assert!(valid(b"d;p;q"));
        assert!(valid(b""));
        assert!(valid(b"# just a comment"));
    }

    #[test]
    fn addresses() {
        assert!(valid(b"5d"));
        assert!(valid(b"1,10p"));
        assert!(valid(b"$d"));
        assert!(valid(b"/foo/d"));
        assert!(valid(b"/foo/,/bar/p"));
        assert!(valid(b"2~4d"));
        assert!(valid(b"1!d"));
        assert!(!valid(b"1,"));
        assert!(!valid(b"/unterminated"));
    }

    #[test]
    fn substitution() {
        assert!(valid(b"s/a/b/"));
        assert!(valid(b"s/a/b/g"));
        assert!(valid(b"s|x|y|gp"));
        assert!(valid(b"s/[0-9]*/N/3"));
        assert!(valid(b"s/\\(x\\)/\\1\\1/"));
        assert!(valid(b"s/a/b/w out.txt"));
        assert!(!valid(b"s/a/b"));
        assert!(!valid(b"s/a"));
        assert!(!valid(b"s"));
        assert!(!valid(b"s/a/b/Z"));
    }

    #[test]
    fn transliteration_requires_equal_lengths() {
        assert!(valid(b"y/abc/xyz/"));
        assert!(valid(b"y/a\\/b/cde/".as_slice()));
        assert!(!valid(b"y/ab/xyz/"));
        assert!(!valid(b"y/abc/xy/"));
        assert!(!valid(b"y/abc/xyz"));
    }

    #[test]
    fn groups_must_balance() {
        assert!(valid(b"{p}"));
        assert!(valid(b"1,5{p\nd\n}"));
        assert!(valid(b"{{p}}"));
        assert!(!valid(b"{p"));
        assert!(!valid(b"p}"));
    }

    #[test]
    fn labels_and_branches() {
        assert!(valid(b": loop"));
        assert!(valid(b"b loop"));
        assert!(valid(b"b"));
        assert!(valid(b"t end"));
        assert!(!valid(b":"));
    }

    #[test]
    fn text_commands() {
        assert!(valid(b"a hello"));
        assert!(valid(b"a\\\nhello"));
        assert!(valid(b"i insert this"));
        assert!(valid(b"c change"));
    }

    #[test]
    fn bracket_expressions_in_regex() {
        assert!(valid(b"/[abc]/d"));
        assert!(valid(b"/[^abc]/d"));
        assert!(valid(b"/[]x]/d"));
        assert!(valid(b"/[[:digit:]]/d"));
        assert!(!valid(b"/[abc/d"));
    }

    #[test]
    fn junk_rejected() {
        assert!(!valid(b"Z"));
        assert!(!valid(b"dx"));
        assert!(!valid(b"s//"));
        assert!(!valid(b"@@@"));
    }

    #[test]
    fn coverage_grows_with_features() {
        let small = Sed.run(b"d").coverage;
        let big = Sed.run(b"1,5{s/a[0-9]/b/g\np\n}\ny/ab/cd/").coverage;
        assert!(big.len() > small.len());
        assert!(Sed.coverable_lines() > 30);
        assert!(big.len() <= Sed.coverable_lines());
    }
}
