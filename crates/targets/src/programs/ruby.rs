//! Instrumented stand-in for the Ruby parser front-end.
//!
//! Accepts a representative core of Ruby's statement syntax: `def … end`
//! with parameter lists, `if/elsif/else/end`, `unless`, `while … end`,
//! assignments (including `+=` style), method calls with and without
//! parentheses on `puts`-style commands, expressions with the usual binary
//! operator precedence, string/symbol/number/array/hash literals, instance
//! variables, method chains, and `do |x| … end` blocks. Statements separate
//! by newline or `;`. An input is *valid* iff the whole program parses.
//!
//! As in the paper (Section 8.3), only the parser is modelled — inputs are
//! never executed, so name resolution and runtime errors are out of scope.

use crate::cov;
use crate::cov::{count_points, Coverage, RunOutcome};
use crate::target::Target;

const SRC: &str = include_str!("ruby.rs");

/// The Ruby front-end target.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ruby;

impl Target for Ruby {
    fn name(&self) -> &'static str {
        "ruby"
    }

    fn run(&self, input: &[u8]) -> RunOutcome {
        let mut p = Parser { s: input, i: 0, cov: Coverage::new(), depth: 0 };
        let valid = p.program();
        RunOutcome { valid, coverage: p.cov }
    }

    fn coverable_lines(&self) -> usize {
        count_points(SRC)
    }

    fn source_lines(&self) -> usize {
        SRC.lines().count()
    }

    fn seeds(&self) -> Vec<Vec<u8>> {
        [
            &b"def add(a, b)\n  a + b\nend\nputs add(1, 2)\n"[..],
            b"x = [1, 2, 3]\nx.each do |v|\n  puts v * 2\nend\n",
            b"if x > 0\n  y = {:a => 1, :b => 2}\nelsif x < 0\n  y = @ivar\nelse\n  y = \"s\"\nend\n",
            b"i = 0\nwhile i < 10\n  i += 1\nend\n",
        ]
        .iter()
        .map(|s| s.to_vec())
        .collect()
    }
}

const MAX_DEPTH: u32 = 120;

const KEYWORDS: &[&[u8]] = &[
    b"def", b"end", b"if", b"elsif", b"else", b"unless", b"while", b"until", b"do", b"then",
    b"return", b"nil", b"true", b"false", b"not", b"and", b"or", b"break", b"next",
];

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
    cov: Coverage,
    depth: u32,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn starts_with(&self, p: &[u8]) -> bool {
        self.s.get(self.i..).is_some_and(|rest| rest.starts_with(p))
    }

    fn skip_spaces(&mut self) {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r') => self.i += 1,
                Some(b'#') => {
                    cov!(self.cov);
                    while self.peek().is_some_and(|b| b != b'\n') {
                        self.i += 1;
                    }
                }
                _ => return,
            }
        }
    }

    fn skip_separators(&mut self) {
        loop {
            self.skip_spaces();
            if matches!(self.peek(), Some(b'\n' | b';')) {
                self.i += 1;
            } else {
                return;
            }
        }
    }

    /// Peeks the next identifier-like word without consuming it.
    fn peek_word(&self) -> Option<&[u8]> {
        let b = self.peek()?;
        if !(b.is_ascii_alphabetic() || b == b'_') {
            return None;
        }
        let mut j = self.i;
        while self.s.get(j).is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_') {
            j += 1;
        }
        // Trailing ? or ! are part of Ruby method names.
        if matches!(self.s.get(j), Some(b'?' | b'!')) {
            j += 1;
        }
        Some(&self.s[self.i..j])
    }

    fn eat_word(&mut self, w: &[u8]) -> bool {
        if self.peek_word() == Some(w) {
            self.i += w.len();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> bool {
        cov!(self.cov);
        let len = match self.peek_word() {
            Some(w) if !KEYWORDS.contains(&w) => w.len(),
            _ => return false,
        };
        self.i += len;
        true
    }

    fn program(&mut self) -> bool {
        cov!(self.cov);
        if !self.statements(&[]) {
            return false;
        }
        self.skip_separators();
        cov!(self.cov);
        self.i == self.s.len()
    }

    /// Parses statements until EOF or one of the `stop` keywords (not
    /// consumed).
    fn statements(&mut self, stop: &[&[u8]]) -> bool {
        cov!(self.cov);
        loop {
            self.skip_separators();
            match self.peek_word() {
                None if self.peek().is_none() => {
                    cov!(self.cov);
                    return true;
                }
                Some(w) if stop.contains(&w) => {
                    cov!(self.cov);
                    return true;
                }
                _ => {
                    if !self.statement() {
                        return false;
                    }
                }
            }
        }
    }

    fn statement(&mut self) -> bool {
        cov!(self.cov);
        if self.depth >= MAX_DEPTH {
            cov!(self.cov);
            return false;
        }
        self.depth += 1;
        let ok = self.statement_inner();
        self.depth -= 1;
        ok
    }

    fn statement_inner(&mut self) -> bool {
        cov!(self.cov);
        if self.eat_word(b"def") {
            cov!(self.cov);
            return self.def_statement();
        }
        if self.eat_word(b"if") || self.eat_word(b"unless") {
            cov!(self.cov);
            return self.if_statement();
        }
        if self.eat_word(b"while") || self.eat_word(b"until") {
            cov!(self.cov);
            return self.while_statement();
        }
        if self.eat_word(b"return") {
            cov!(self.cov);
            self.skip_spaces();
            if matches!(self.peek(), Some(b'\n' | b';') | None) {
                return true;
            }
            return self.expr();
        }
        if self.eat_word(b"break") || self.eat_word(b"next") {
            cov!(self.cov);
            return true;
        }
        // Expression statement (covers assignment via expr()).
        self.expr()
    }

    fn def_statement(&mut self) -> bool {
        cov!(self.cov);
        self.skip_spaces();
        if !self.ident() {
            cov!(self.cov);
            return false;
        }
        self.skip_spaces();
        if self.eat(b'(') {
            cov!(self.cov);
            self.skip_spaces();
            if !self.eat(b')') {
                loop {
                    self.skip_spaces();
                    if !self.ident() {
                        cov!(self.cov);
                        return false;
                    }
                    self.skip_spaces();
                    if self.eat(b')') {
                        break;
                    }
                    if !self.eat(b',') {
                        cov!(self.cov);
                        return false;
                    }
                }
            }
        }
        if !self.statements(&[b"end"]) {
            return false;
        }
        cov!(self.cov);
        self.eat_word(b"end")
    }

    fn if_statement(&mut self) -> bool {
        cov!(self.cov);
        self.skip_spaces();
        if !self.expr() {
            return false;
        }
        self.skip_spaces();
        let _ = self.eat_word(b"then");
        loop {
            if !self.statements(&[b"elsif", b"else", b"end"]) {
                return false;
            }
            if self.eat_word(b"elsif") {
                cov!(self.cov);
                self.skip_spaces();
                if !self.expr() {
                    return false;
                }
                let _ = self.eat_word(b"then");
            } else {
                break;
            }
        }
        if self.eat_word(b"else") {
            cov!(self.cov);
            if !self.statements(&[b"end"]) {
                return false;
            }
        }
        cov!(self.cov);
        self.eat_word(b"end")
    }

    fn while_statement(&mut self) -> bool {
        cov!(self.cov);
        self.skip_spaces();
        if !self.expr() {
            return false;
        }
        let _ = self.eat_word(b"do");
        if !self.statements(&[b"end"]) {
            return false;
        }
        cov!(self.cov);
        self.eat_word(b"end")
    }

    /// expr := ternary-free assignment / binary chain.
    fn expr(&mut self) -> bool {
        cov!(self.cov);
        self.skip_spaces();
        // Possible assignment target: ident/@ivar followed by (op)=.
        let save = self.i;
        if self.assign_target() {
            self.skip_spaces();
            for op in [&b"="[..], b"+=", b"-=", b"*=", b"/=", b"||=", b"&&="] {
                // Careful: `==` is comparison, not assignment.
                if self.starts_with(op) && !self.starts_with(b"==") {
                    cov!(self.cov);
                    self.i += op.len();
                    self.skip_spaces();
                    return self.expr();
                }
            }
        }
        self.i = save;
        self.binary(0)
    }

    fn assign_target(&mut self) -> bool {
        cov!(self.cov);
        if self.eat(b'@') {
            cov!(self.cov);
            if !self.ident() {
                return false;
            }
        } else if !self.ident() {
            return false;
        }
        // Indexed and attribute targets: h[:k] = v, obj.field = v.
        loop {
            if self.eat(b'.') {
                cov!(self.cov);
                if !self.ident() {
                    return false;
                }
            } else if self.peek() == Some(b'[') {
                cov!(self.cov);
                self.i += 1;
                if !self.expr() {
                    return false;
                }
                self.skip_spaces();
                if !self.eat(b']') {
                    return false;
                }
            } else {
                return true;
            }
        }
    }

    fn binary(&mut self, min_level: u8) -> bool {
        cov!(self.cov);
        if !self.unary() {
            return false;
        }
        loop {
            self.skip_spaces();
            let Some((op_len, level)) = self.peek_binop() else {
                cov!(self.cov);
                return true;
            };
            if level < min_level {
                return true;
            }
            self.i += op_len;
            self.skip_spaces();
            if !self.binary(level + 1) {
                return false;
            }
        }
    }

    /// Returns (byte length, precedence level) of the operator at the
    /// cursor.
    fn peek_binop(&self) -> Option<(usize, u8)> {
        const OPS: &[(&[u8], u8)] = &[
            (b"||", 1),
            (b"&&", 2),
            (b"==", 3),
            (b"!=", 3),
            (b"<=>", 3),
            (b"<=", 4),
            (b">=", 4),
            (b"<<", 5),
            (b">>", 5),
            (b"<", 4),
            (b">", 4),
            (b"+", 6),
            (b"-", 6),
            (b"**", 8),
            (b"*", 7),
            (b"/", 7),
            (b"%", 7),
        ];
        for (op, level) in OPS {
            if self.starts_with(op) {
                // Reject `=` tail: `==` handled above, `<<=` etc. unsupported.
                return Some((op.len(), *level));
            }
        }
        if self.peek_word() == Some(b"and") || self.peek_word() == Some(b"or") {
            return Some((self.peek_word().expect("peeked").len(), 1));
        }
        None
    }

    fn unary(&mut self) -> bool {
        cov!(self.cov);
        self.skip_spaces();
        if self.eat(b'!') || self.eat_word(b"not") {
            cov!(self.cov);
            return self.unary();
        }
        if self.eat(b'-') {
            cov!(self.cov);
            return self.unary();
        }
        self.postfix()
    }

    fn postfix(&mut self) -> bool {
        cov!(self.cov);
        if !self.primary() {
            return false;
        }
        loop {
            self.skip_spaces();
            if self.eat(b'.') {
                cov!(self.cov);
                if !self.ident() {
                    cov!(self.cov);
                    return false;
                }
                self.skip_spaces();
                if self.peek() == Some(b'(') {
                    cov!(self.cov);
                    if !self.call_args() {
                        return false;
                    }
                }
                self.skip_spaces();
                if self.peek_word() == Some(b"do") {
                    cov!(self.cov);
                    if !self.block() {
                        return false;
                    }
                }
            } else if self.peek() == Some(b'[') {
                cov!(self.cov);
                self.i += 1;
                if !self.expr() {
                    return false;
                }
                self.skip_spaces();
                if !self.eat(b']') {
                    cov!(self.cov);
                    return false;
                }
            } else {
                cov!(self.cov);
                return true;
            }
        }
    }

    fn primary(&mut self) -> bool {
        cov!(self.cov);
        self.skip_spaces();
        match self.peek() {
            Some(b'0'..=b'9') => {
                cov!(self.cov);
                self.number()
            }
            Some(b'"') => {
                cov!(self.cov);
                self.string(b'"')
            }
            Some(b'\'') => {
                cov!(self.cov);
                self.string(b'\'')
            }
            Some(b':') => {
                cov!(self.cov);
                self.i += 1;
                self.ident()
            }
            Some(b'@') => {
                cov!(self.cov);
                self.i += 1;
                self.ident()
            }
            Some(b'[') => {
                cov!(self.cov);
                self.i += 1;
                self.list_until(b']')
            }
            Some(b'{') => {
                cov!(self.cov);
                self.i += 1;
                self.hash_body()
            }
            Some(b'(') => {
                cov!(self.cov);
                self.i += 1;
                if !self.expr() {
                    return false;
                }
                self.skip_spaces();
                self.eat(b')')
            }
            _ => {
                if self.eat_word(b"nil") || self.eat_word(b"true") || self.eat_word(b"false") {
                    cov!(self.cov);
                    return true;
                }
                cov!(self.cov);
                if !self.ident() {
                    cov!(self.cov);
                    return false;
                }
                self.skip_spaces();
                // Call with parens, or a command call like `puts x, y`.
                if self.peek() == Some(b'(') {
                    cov!(self.cov);
                    if !self.call_args() {
                        return false;
                    }
                } else if self
                    .peek()
                    .is_some_and(|b| b == b'"' || b == b'\'' || b == b':' || b == b'@')
                    || self.peek_word().is_some_and(|w| !KEYWORDS.contains(&w))
                    || self.peek().is_some_and(|b| b.is_ascii_digit())
                {
                    // Paren-less command argument list: puts x, "s", 1.
                    cov!(self.cov);
                    loop {
                        if !self.expr() {
                            return false;
                        }
                        self.skip_spaces();
                        if !self.eat(b',') {
                            break;
                        }
                        self.skip_spaces();
                    }
                }
                self.skip_spaces();
                if self.peek_word() == Some(b"do") {
                    cov!(self.cov);
                    return self.block();
                }
                true
            }
        }
    }

    fn number(&mut self) -> bool {
        cov!(self.cov);
        while self.peek().is_some_and(|b| b.is_ascii_digit() || b == b'_') {
            self.i += 1;
        }
        // Ruby floats require a digit after the dot; `10.times` is a method
        // call on the integer, so only consume the dot with a digit after.
        if self.peek() == Some(b'.') && self.s.get(self.i + 1).is_some_and(u8::is_ascii_digit) {
            cov!(self.cov);
            self.i += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.i += 1;
            }
        }
        true
    }

    fn string(&mut self, quote: u8) -> bool {
        cov!(self.cov);
        debug_assert_eq!(self.peek(), Some(quote));
        self.i += 1;
        loop {
            match self.peek() {
                None => {
                    cov!(self.cov);
                    return false;
                }
                Some(b'\\') => {
                    cov!(self.cov);
                    self.i += 2;
                }
                Some(b'#') if quote == b'"' && self.starts_with(b"#{") => {
                    cov!(self.cov);
                    self.i += 2;
                    if !self.expr() {
                        return false;
                    }
                    if !self.eat(b'}') {
                        cov!(self.cov);
                        return false;
                    }
                }
                Some(b) if b == quote => {
                    self.i += 1;
                    return true;
                }
                Some(_) => self.i += 1,
            }
        }
    }

    fn list_until(&mut self, close: u8) -> bool {
        cov!(self.cov);
        self.skip_spaces();
        if self.eat(close) {
            cov!(self.cov);
            return true;
        }
        loop {
            if !self.expr() {
                return false;
            }
            self.skip_spaces();
            if self.eat(close) {
                cov!(self.cov);
                return true;
            }
            if !self.eat(b',') {
                cov!(self.cov);
                return false;
            }
        }
    }

    fn hash_body(&mut self) -> bool {
        cov!(self.cov);
        self.skip_spaces();
        if self.eat(b'}') {
            cov!(self.cov);
            return true;
        }
        loop {
            if !self.expr() {
                return false;
            }
            self.skip_spaces();
            if !self.starts_with(b"=>") {
                cov!(self.cov);
                return false;
            }
            self.i += 2;
            if !self.expr() {
                return false;
            }
            self.skip_spaces();
            if self.eat(b'}') {
                cov!(self.cov);
                return true;
            }
            if !self.eat(b',') {
                cov!(self.cov);
                return false;
            }
        }
    }

    /// Parenthesized call arguments: `( expr, … )`.
    fn call_args(&mut self) -> bool {
        cov!(self.cov);
        debug_assert_eq!(self.peek(), Some(b'('));
        self.i += 1;
        self.skip_spaces();
        if self.eat(b')') {
            cov!(self.cov);
            return true;
        }
        loop {
            if !self.expr() {
                return false;
            }
            self.skip_spaces();
            if self.eat(b')') {
                cov!(self.cov);
                return true;
            }
            if !self.eat(b',') {
                cov!(self.cov);
                return false;
            }
        }
    }

    fn block(&mut self) -> bool {
        cov!(self.cov);
        if !self.eat_word(b"do") {
            return false;
        }
        self.skip_spaces();
        if self.eat(b'|') {
            cov!(self.cov);
            loop {
                self.skip_spaces();
                if !self.ident() {
                    cov!(self.cov);
                    return false;
                }
                self.skip_spaces();
                if self.eat(b'|') {
                    break;
                }
                if !self.eat(b',') {
                    cov!(self.cov);
                    return false;
                }
            }
        }
        if !self.statements(&[b"end"]) {
            return false;
        }
        cov!(self.cov);
        self.eat_word(b"end")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid(s: &[u8]) -> bool {
        Ruby.run(s).valid
    }

    #[test]
    fn seeds_are_valid() {
        for s in Ruby.seeds() {
            assert!(valid(&s), "seed {:?}", String::from_utf8_lossy(&s));
        }
    }

    #[test]
    fn simple_expressions() {
        assert!(valid(b"1 + 2 * 3"));
        assert!(valid(b"x = 5"));
        assert!(valid(b"y = x * (2 + z)"));
        assert!(valid(b"a == b && c != d"));
        assert!(valid(b"x<<2"));
        assert!(valid(b""));
        assert!(!valid(b"1 +"));
        assert!(!valid(b"= 5"));
    }

    #[test]
    fn literals() {
        assert!(valid(b"\"hello\""));
        assert!(valid(b"'single'"));
        assert!(valid(b"\"interp #{x + 1} ok\""));
        assert!(valid(b":symbol"));
        assert!(valid(b"[1, 2, 3]"));
        assert!(valid(b"[]"));
        assert!(valid(b"{:a => 1}"));
        assert!(valid(b"{}"));
        assert!(valid(b"3.25"));
        assert!(valid(b"1_000"));
        assert!(!valid(b"\"unterminated"));
        assert!(!valid(b"[1, 2"));
        assert!(!valid(b"{:a 1}"));
        assert!(!valid(b"3."));
    }

    #[test]
    fn def_and_calls() {
        assert!(valid(b"def f\nend"));
        assert!(valid(b"def f(a)\n  a\nend"));
        assert!(valid(b"def f(a, b)\n  a + b\nend"));
        assert!(valid(b"f(1, 2)"));
        assert!(valid(b"puts x"));
        assert!(valid(b"puts x, y"));
        assert!(valid(b"obj.method(1).chain"));
        assert!(!valid(b"def\nend"));
        assert!(!valid(b"def f(a,)\nend"));
        assert!(!valid(b"def f(a)\n")); // missing end
    }

    #[test]
    fn control_flow() {
        assert!(valid(b"if x\n  y\nend"));
        assert!(valid(b"if x then y end"));
        assert!(valid(b"if a\nb\nelsif c\nd\nelse\ne\nend"));
        assert!(valid(b"unless x\n y\nend"));
        assert!(valid(b"while i < 3\n i += 1\nend"));
        assert!(!valid(b"if x\n y"));
        assert!(!valid(b"else\nend"));
    }

    #[test]
    fn blocks_and_ivars() {
        assert!(valid(b"list.each do |v|\n puts v\nend"));
        assert!(valid(b"f do |a, b|\n a\nend"));
        assert!(valid(b"@count = 3"));
        assert!(valid(b"@a + @b"));
        assert!(!valid(b"f do |a\nend"));
        assert!(!valid(b"@ = 3"));
    }

    #[test]
    fn indexing() {
        assert!(valid(b"a[0]"));
        assert!(valid(b"h[:key] = 1 + a[i]"));
        assert!(!valid(b"a[0"));
    }

    #[test]
    fn comments() {
        assert!(valid(b"# full line\nx = 1 # trailing\n"));
    }

    #[test]
    fn coverage_accounting() {
        let c = Ruby.run(b"def f(a)\n if a > 0\n  [a, \"s\"]\n end\nend\n").coverage;
        assert!(c.len() > 20);
        assert!(Ruby.coverable_lines() >= c.len());
    }
}
