//! Instrumented stand-in for the Python parser front-end.
//!
//! Accepts a representative core of Python's statement syntax with real
//! indentation sensitivity: `def`, `class`, `if/elif/else`, `while`/`for`
//! (with `else` omitted), `return/pass/break/continue/import`, assignments
//! (including augmented), expression statements, and an expression grammar
//! with `lambda`, boolean operators, comparisons, arithmetic, calls,
//! attribute access, indexing, and list/dict/tuple/string/number literals.
//! Suites are either inline (`if x: y = 1`) or indented blocks; dedents
//! must return to an enclosing indentation level, exactly as in CPython's
//! tokenizer. Indentation must use spaces (tabs are rejected).
//!
//! As in the paper (Section 8.3), inputs are parsed, never executed — the
//! paper wraps inputs in `if False:` to the same effect.

use crate::cov;
use crate::cov::{count_points, Coverage, RunOutcome};
use crate::target::Target;

const SRC: &str = include_str!("python.rs");

/// The Python front-end target.
#[derive(Debug, Clone, Copy, Default)]
pub struct Python;

impl Target for Python {
    fn name(&self) -> &'static str {
        "python"
    }

    fn run(&self, input: &[u8]) -> RunOutcome {
        let mut p = Parser { s: input, i: 0, cov: Coverage::new(), depth: 0 };
        let valid = p.program();
        RunOutcome { valid, coverage: p.cov }
    }

    fn coverable_lines(&self) -> usize {
        count_points(SRC)
    }

    fn source_lines(&self) -> usize {
        SRC.lines().count()
    }

    fn seeds(&self) -> Vec<Vec<u8>> {
        [
            &b"def add(a, b):\n    return a + b\n\nprint(add(1, 2))\n"[..],
            b"x = [1, 2, 3]\nfor v in x:\n    if v > 1:\n        print(v)\n    else:\n        pass\n",
            b"class Point:\n    def norm(self):\n        return self.x * self.x\n",
            b"f = lambda a: a * 2\nwhile f(1) < 4:\n    break\n",
        ]
        .iter()
        .map(|s| s.to_vec())
        .collect()
    }
}

const MAX_DEPTH: u32 = 120;

const KEYWORDS: &[&[u8]] = &[
    b"def",
    b"class",
    b"if",
    b"elif",
    b"else",
    b"while",
    b"for",
    b"in",
    b"return",
    b"pass",
    b"break",
    b"continue",
    b"import",
    b"from",
    b"and",
    b"or",
    b"not",
    b"lambda",
    b"None",
    b"True",
    b"False",
    b"is",
];

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
    cov: Coverage,
    depth: u32,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn starts_with(&self, p: &[u8]) -> bool {
        self.s.get(self.i..).is_some_and(|rest| rest.starts_with(p))
    }

    /// Skips spaces and comments within a logical line (never newlines).
    fn skip_spaces(&mut self) {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r') => self.i += 1,
                Some(b'#') => {
                    cov!(self.cov);
                    while self.peek().is_some_and(|b| b != b'\n') {
                        self.i += 1;
                    }
                }
                _ => return,
            }
        }
    }

    fn peek_word(&self) -> Option<&[u8]> {
        let b = self.peek()?;
        if !(b.is_ascii_alphabetic() || b == b'_') {
            return None;
        }
        let mut j = self.i;
        while self.s.get(j).is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_') {
            j += 1;
        }
        Some(&self.s[self.i..j])
    }

    fn eat_word(&mut self, w: &[u8]) -> bool {
        if self.peek_word() == Some(w) {
            self.i += w.len();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> bool {
        cov!(self.cov);
        let len = match self.peek_word() {
            Some(w) if !KEYWORDS.contains(&w) => w.len(),
            _ => return false,
        };
        self.i += len;
        true
    }

    /// At a line start: measures indentation. Returns `None` for
    /// tab-indented lines (rejected).
    fn measure_indent(&self) -> Option<usize> {
        let mut j = self.i;
        let mut n = 0usize;
        while let Some(&b) = self.s.get(j) {
            match b {
                b' ' => {
                    n += 1;
                    j += 1;
                }
                b'\t' => return None,
                _ => break,
            }
        }
        Some(n)
    }

    /// Skips blank and comment-only lines; afterwards the cursor is at a
    /// line start of a code line or at EOF.
    fn skip_blank_lines(&mut self) {
        loop {
            let save = self.i;
            let mut j = self.i;
            while matches!(self.s.get(j), Some(b' ' | b'\t' | b'\r')) {
                j += 1;
            }
            match self.s.get(j) {
                Some(b'\n') => {
                    self.i = j + 1;
                }
                Some(b'#') => {
                    cov!(self.cov);
                    while self.s.get(j).is_some_and(|&b| b != b'\n') {
                        j += 1;
                    }
                    self.i = j + usize::from(self.s.get(j).is_some());
                }
                None => {
                    self.i = j;
                    return;
                }
                _ => {
                    self.i = save;
                    return;
                }
            }
        }
    }

    fn program(&mut self) -> bool {
        cov!(self.cov);
        loop {
            self.skip_blank_lines();
            if self.peek().is_none() {
                cov!(self.cov);
                return true;
            }
            match self.measure_indent() {
                Some(0) => {}
                _ => {
                    cov!(self.cov);
                    return false; // top-level code must not be indented
                }
            }
            if !self.statement_line(0) {
                return false;
            }
        }
    }

    /// Parses one logical line (compound or simple) whose indentation is
    /// `indent` (cursor at line start).
    fn statement_line(&mut self, indent: usize) -> bool {
        cov!(self.cov);
        if self.depth >= MAX_DEPTH {
            cov!(self.cov);
            return false;
        }
        self.i += indent; // consume the measured indentation
        self.depth += 1;
        let ok = self.statement_body(indent);
        self.depth -= 1;
        ok
    }

    fn statement_body(&mut self, indent: usize) -> bool {
        cov!(self.cov);
        match self.peek_word() {
            Some(b"def") => {
                cov!(self.cov);
                self.i += 3;
                self.def_statement(indent)
            }
            Some(b"class") => {
                cov!(self.cov);
                self.i += 5;
                self.class_statement(indent)
            }
            Some(b"if") => {
                cov!(self.cov);
                self.i += 2;
                self.if_statement(indent)
            }
            Some(b"while") => {
                cov!(self.cov);
                self.i += 5;
                self.skip_spaces();
                if !self.expr() {
                    return false;
                }
                self.suite(indent)
            }
            Some(b"for") => {
                cov!(self.cov);
                self.i += 3;
                self.skip_spaces();
                if !self.ident() {
                    cov!(self.cov);
                    return false;
                }
                self.skip_spaces();
                if !self.eat_word(b"in") {
                    cov!(self.cov);
                    return false;
                }
                self.skip_spaces();
                if !self.expr() {
                    return false;
                }
                self.suite(indent)
            }
            _ => {
                // Simple statement(s), ';'-separated, to end of line.
                if !self.simple_statements() {
                    return false;
                }
                self.end_of_line()
            }
        }
    }

    fn end_of_line(&mut self) -> bool {
        self.skip_spaces();
        cov!(self.cov);
        match self.peek() {
            None => true,
            Some(b'\n') => {
                self.i += 1;
                true
            }
            _ => false,
        }
    }

    fn simple_statements(&mut self) -> bool {
        cov!(self.cov);
        loop {
            if !self.simple_statement() {
                return false;
            }
            self.skip_spaces();
            if !self.eat(b';') {
                cov!(self.cov);
                return true;
            }
            self.skip_spaces();
            // Trailing ';' allowed.
            if matches!(self.peek(), None | Some(b'\n')) {
                cov!(self.cov);
                return true;
            }
        }
    }

    fn simple_statement(&mut self) -> bool {
        cov!(self.cov);
        self.skip_spaces();
        if self.eat_word(b"pass") || self.eat_word(b"break") || self.eat_word(b"continue") {
            cov!(self.cov);
            return true;
        }
        if self.eat_word(b"return") {
            cov!(self.cov);
            self.skip_spaces();
            if matches!(self.peek(), None | Some(b'\n') | Some(b';')) {
                return true;
            }
            return self.expr();
        }
        if self.eat_word(b"import") {
            cov!(self.cov);
            self.skip_spaces();
            return self.dotted_name();
        }
        if self.eat_word(b"from") {
            cov!(self.cov);
            self.skip_spaces();
            if !self.dotted_name() {
                return false;
            }
            self.skip_spaces();
            if !self.eat_word(b"import") {
                cov!(self.cov);
                return false;
            }
            self.skip_spaces();
            return self.ident() || self.eat(b'*');
        }
        // Assignment or expression.
        let save = self.i;
        if self.assign_target() {
            self.skip_spaces();
            for op in [&b"="[..], b"+=", b"-=", b"*=", b"/=", b"//=", b"%=", b"**="] {
                if self.starts_with(op) && !self.starts_with(b"==") {
                    cov!(self.cov);
                    self.i += op.len();
                    self.skip_spaces();
                    return self.expr();
                }
            }
        }
        self.i = save;
        self.expr()
    }

    fn dotted_name(&mut self) -> bool {
        cov!(self.cov);
        if !self.ident() {
            return false;
        }
        while self.eat(b'.') {
            cov!(self.cov);
            if !self.ident() {
                return false;
            }
        }
        true
    }

    /// Assignment target: name with optional trailing `.attr` / `[index]`.
    fn assign_target(&mut self) -> bool {
        cov!(self.cov);
        if !self.ident() {
            return false;
        }
        loop {
            if self.eat(b'.') {
                cov!(self.cov);
                if !self.ident() {
                    return false;
                }
            } else if self.peek() == Some(b'[') {
                cov!(self.cov);
                self.i += 1;
                if !self.expr() {
                    return false;
                }
                self.skip_spaces();
                if !self.eat(b']') {
                    return false;
                }
            } else {
                return true;
            }
        }
    }

    fn def_statement(&mut self, indent: usize) -> bool {
        cov!(self.cov);
        self.skip_spaces();
        if !self.ident() {
            cov!(self.cov);
            return false;
        }
        self.skip_spaces();
        if !self.eat(b'(') {
            cov!(self.cov);
            return false;
        }
        self.skip_spaces();
        if !self.eat(b')') {
            loop {
                self.skip_spaces();
                if !self.ident() {
                    cov!(self.cov);
                    return false;
                }
                self.skip_spaces();
                // Default value.
                if self.eat(b'=') {
                    cov!(self.cov);
                    self.skip_spaces();
                    if !self.expr() {
                        return false;
                    }
                    self.skip_spaces();
                }
                if self.eat(b')') {
                    break;
                }
                if !self.eat(b',') {
                    cov!(self.cov);
                    return false;
                }
            }
        }
        self.suite(indent)
    }

    fn class_statement(&mut self, indent: usize) -> bool {
        cov!(self.cov);
        self.skip_spaces();
        if !self.ident() {
            cov!(self.cov);
            return false;
        }
        self.skip_spaces();
        if self.eat(b'(') {
            cov!(self.cov);
            self.skip_spaces();
            if !self.eat(b')') {
                loop {
                    self.skip_spaces();
                    if !self.dotted_name() {
                        return false;
                    }
                    self.skip_spaces();
                    if self.eat(b')') {
                        break;
                    }
                    if !self.eat(b',') {
                        cov!(self.cov);
                        return false;
                    }
                }
            }
        }
        self.suite(indent)
    }

    fn if_statement(&mut self, indent: usize) -> bool {
        cov!(self.cov);
        self.skip_spaces();
        if !self.expr() {
            return false;
        }
        if !self.suite(indent) {
            return false;
        }
        loop {
            // elif / else must sit at the same indentation.
            let save = self.i;
            self.skip_blank_lines();
            if self.measure_indent() != Some(indent) {
                self.i = save;
                cov!(self.cov);
                return true;
            }
            let line_start = self.i;
            self.i += indent;
            if self.eat_word(b"elif") {
                cov!(self.cov);
                self.skip_spaces();
                if !self.expr() {
                    return false;
                }
                if !self.suite(indent) {
                    return false;
                }
            } else if self.eat_word(b"else") {
                cov!(self.cov);
                self.skip_spaces();
                return self.suite(indent);
            } else {
                self.i = save;
                let _ = line_start;
                cov!(self.cov);
                return true;
            }
        }
    }

    /// `: suite` — either inline simple statements or an indented block.
    fn suite(&mut self, indent: usize) -> bool {
        cov!(self.cov);
        self.skip_spaces();
        if !self.eat(b':') {
            cov!(self.cov);
            return false;
        }
        self.skip_spaces();
        if !matches!(self.peek(), None | Some(b'\n')) {
            // Inline suite.
            cov!(self.cov);
            if !self.simple_statements() {
                return false;
            }
            return self.end_of_line();
        }
        self.eat(b'\n');
        // Indented block: first line fixes the child indentation.
        self.skip_blank_lines();
        let Some(child) = self.measure_indent() else {
            cov!(self.cov);
            return false;
        };
        if child <= indent {
            cov!(self.cov);
            return false; // expected an indented block
        }
        loop {
            if !self.statement_line(child) {
                return false;
            }
            self.skip_blank_lines();
            if self.peek().is_none() {
                cov!(self.cov);
                return true;
            }
            match self.measure_indent() {
                Some(n) if n == child => {
                    cov!(self.cov);
                }
                Some(n) if n <= indent => {
                    // Dedent to an enclosing level: end of this block. The
                    // caller validates the exact level.
                    cov!(self.cov);
                    return true;
                }
                _ => {
                    cov!(self.cov);
                    return false; // inconsistent dedent or stray indent
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Expressions.
    // ------------------------------------------------------------------

    fn expr(&mut self) -> bool {
        cov!(self.cov);
        self.skip_spaces();
        if self.eat_word(b"lambda") {
            cov!(self.cov);
            self.skip_spaces();
            if !self.eat(b':') {
                loop {
                    self.skip_spaces();
                    if !self.ident() {
                        cov!(self.cov);
                        return false;
                    }
                    self.skip_spaces();
                    if self.eat(b':') {
                        break;
                    }
                    if !self.eat(b',') {
                        cov!(self.cov);
                        return false;
                    }
                }
            }
            return self.expr();
        }
        self.or_expr()
    }

    fn or_expr(&mut self) -> bool {
        cov!(self.cov);
        if !self.and_expr() {
            return false;
        }
        loop {
            self.skip_spaces();
            if self.eat_word(b"or") {
                cov!(self.cov);
                if !self.and_expr() {
                    return false;
                }
            } else {
                return true;
            }
        }
    }

    fn and_expr(&mut self) -> bool {
        cov!(self.cov);
        if !self.not_expr() {
            return false;
        }
        loop {
            self.skip_spaces();
            if self.eat_word(b"and") {
                cov!(self.cov);
                if !self.not_expr() {
                    return false;
                }
            } else {
                return true;
            }
        }
    }

    fn not_expr(&mut self) -> bool {
        cov!(self.cov);
        self.skip_spaces();
        if self.eat_word(b"not") {
            cov!(self.cov);
            return self.not_expr();
        }
        self.comparison()
    }

    fn comparison(&mut self) -> bool {
        cov!(self.cov);
        if !self.arith(0) {
            return false;
        }
        loop {
            self.skip_spaces();
            let mut matched = false;
            for op in [&b"=="[..], b"!=", b"<=", b">=", b"<", b">"] {
                if self.starts_with(op) {
                    cov!(self.cov);
                    self.i += op.len();
                    matched = true;
                    break;
                }
            }
            if !matched {
                if self.eat_word(b"in") {
                    cov!(self.cov);
                    matched = true;
                } else if self.eat_word(b"is") {
                    cov!(self.cov);
                    self.skip_spaces();
                    let _ = self.eat_word(b"not");
                    matched = true;
                } else if self.peek_word() == Some(b"not") {
                    // `not in`
                    let save = self.i;
                    self.i += 3;
                    self.skip_spaces();
                    if self.eat_word(b"in") {
                        cov!(self.cov);
                        matched = true;
                    } else {
                        self.i = save;
                    }
                }
            }
            if !matched {
                return true;
            }
            if !self.arith(0) {
                return false;
            }
        }
    }

    fn arith(&mut self, min_level: u8) -> bool {
        cov!(self.cov);
        if !self.unary() {
            return false;
        }
        loop {
            self.skip_spaces();
            const OPS: &[(&[u8], u8)] =
                &[(b"+", 1), (b"-", 1), (b"**", 3), (b"//", 2), (b"*", 2), (b"/", 2), (b"%", 2)];
            let mut found = None;
            for (op, level) in OPS {
                if self.starts_with(op) && !self.starts_with(b"+=") && !self.starts_with(b"-=") {
                    found = Some((op.len(), *level));
                    break;
                }
            }
            let Some((len, level)) = found else {
                cov!(self.cov);
                return true;
            };
            if level < min_level {
                return true;
            }
            self.i += len;
            self.skip_spaces();
            if !self.arith(level + 1) {
                return false;
            }
        }
    }

    fn unary(&mut self) -> bool {
        cov!(self.cov);
        self.skip_spaces();
        if self.eat(b'-') || self.eat(b'+') {
            cov!(self.cov);
            return self.unary();
        }
        self.postfix()
    }

    fn postfix(&mut self) -> bool {
        cov!(self.cov);
        if !self.primary() {
            return false;
        }
        loop {
            match self.peek() {
                Some(b'(') => {
                    cov!(self.cov);
                    self.i += 1;
                    self.skip_spaces();
                    if self.eat(b')') {
                        continue;
                    }
                    loop {
                        if !self.expr() {
                            return false;
                        }
                        self.skip_spaces();
                        if self.eat(b')') {
                            break;
                        }
                        if !self.eat(b',') {
                            cov!(self.cov);
                            return false;
                        }
                    }
                }
                Some(b'[') => {
                    cov!(self.cov);
                    self.i += 1;
                    if !self.expr() {
                        return false;
                    }
                    self.skip_spaces();
                    if !self.eat(b']') {
                        cov!(self.cov);
                        return false;
                    }
                }
                Some(b'.') => {
                    cov!(self.cov);
                    self.i += 1;
                    if !self.ident() {
                        cov!(self.cov);
                        return false;
                    }
                }
                _ => {
                    cov!(self.cov);
                    return true;
                }
            }
        }
    }

    fn primary(&mut self) -> bool {
        cov!(self.cov);
        self.skip_spaces();
        match self.peek() {
            Some(b'0'..=b'9') => {
                cov!(self.cov);
                self.number()
            }
            Some(b'"') => {
                cov!(self.cov);
                self.string(b'"')
            }
            Some(b'\'') => {
                cov!(self.cov);
                self.string(b'\'')
            }
            Some(b'[') => {
                cov!(self.cov);
                self.i += 1;
                self.expr_list_until(b']')
            }
            Some(b'{') => {
                cov!(self.cov);
                self.i += 1;
                self.dict_body()
            }
            Some(b'(') => {
                cov!(self.cov);
                self.i += 1;
                self.skip_spaces();
                if self.eat(b')') {
                    cov!(self.cov);
                    return true; // empty tuple
                }
                if !self.expr() {
                    return false;
                }
                self.skip_spaces();
                // Tuple.
                while self.eat(b',') {
                    cov!(self.cov);
                    self.skip_spaces();
                    if self.peek() == Some(b')') {
                        break;
                    }
                    if !self.expr() {
                        return false;
                    }
                    self.skip_spaces();
                }
                self.eat(b')')
            }
            _ => {
                if self.eat_word(b"None") || self.eat_word(b"True") || self.eat_word(b"False") {
                    cov!(self.cov);
                    return true;
                }
                cov!(self.cov);
                self.ident()
            }
        }
    }

    fn number(&mut self) -> bool {
        cov!(self.cov);
        if self.starts_with(b"0x") || self.starts_with(b"0X") {
            cov!(self.cov);
            self.i += 2;
            let start = self.i;
            while self.peek().is_some_and(|b| b.is_ascii_hexdigit()) {
                self.i += 1;
            }
            return self.i > start;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.i += 1;
        }
        if self.eat(b'.') {
            cov!(self.cov);
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if self.eat(b'e') || self.eat(b'E') {
            cov!(self.cov);
            let _ = self.eat(b'-') || self.eat(b'+');
            let start = self.i;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.i += 1;
            }
            if self.i == start {
                return false;
            }
        }
        true
    }

    fn string(&mut self, quote: u8) -> bool {
        cov!(self.cov);
        debug_assert_eq!(self.peek(), Some(quote));
        self.i += 1;
        loop {
            match self.peek() {
                None | Some(b'\n') => {
                    cov!(self.cov);
                    return false;
                }
                Some(b'\\') => {
                    cov!(self.cov);
                    self.i += 2;
                }
                Some(b) if b == quote => {
                    self.i += 1;
                    return true;
                }
                Some(_) => self.i += 1,
            }
        }
    }

    fn expr_list_until(&mut self, close: u8) -> bool {
        cov!(self.cov);
        self.skip_spaces();
        if self.eat(close) {
            cov!(self.cov);
            return true;
        }
        loop {
            if !self.expr() {
                return false;
            }
            self.skip_spaces();
            if self.eat(close) {
                cov!(self.cov);
                return true;
            }
            if !self.eat(b',') {
                cov!(self.cov);
                return false;
            }
            self.skip_spaces();
            // Trailing comma.
            if self.eat(close) {
                cov!(self.cov);
                return true;
            }
        }
    }

    fn dict_body(&mut self) -> bool {
        cov!(self.cov);
        self.skip_spaces();
        if self.eat(b'}') {
            cov!(self.cov);
            return true;
        }
        loop {
            if !self.expr() {
                return false;
            }
            self.skip_spaces();
            if !self.eat(b':') {
                cov!(self.cov);
                return false;
            }
            if !self.expr() {
                return false;
            }
            self.skip_spaces();
            if self.eat(b'}') {
                cov!(self.cov);
                return true;
            }
            if !self.eat(b',') {
                cov!(self.cov);
                return false;
            }
            self.skip_spaces();
            if self.eat(b'}') {
                cov!(self.cov);
                return true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid(s: &[u8]) -> bool {
        Python.run(s).valid
    }

    #[test]
    fn seeds_are_valid() {
        for s in Python.seeds() {
            assert!(valid(&s), "seed {:?}", String::from_utf8_lossy(&s));
        }
    }

    #[test]
    fn simple_statements() {
        assert!(valid(b"x = 1\n"));
        assert!(valid(b"x = 1; y = 2\n"));
        assert!(valid(b"pass\n"));
        assert!(valid(b"x += 2 * y\n"));
        assert!(valid(b"print(1, 2)\n"));
        assert!(valid(b"import os\n"));
        assert!(valid(b"import os.path\n"));
        assert!(valid(b"from os import path\n"));
        assert!(valid(b""));
        assert!(!valid(b"x =\n"));
        assert!(!valid(b"import\n"));
    }

    #[test]
    fn indentation_rules() {
        assert!(valid(b"if x:\n    y = 1\n"));
        assert!(valid(b"if x:\n  y = 1\n  z = 2\n"));
        assert!(valid(b"if x:\n    if y:\n        z = 1\n    w = 2\n"));
        // Top-level code must not be indented.
        assert!(!valid(b"  x = 1\n"));
        // Block must be indented.
        assert!(!valid(b"if x:\ny = 1\n"));
        // Inconsistent dedent (to a level that matches no enclosing block).
        assert!(!valid(b"if x:\n    if y:\n        z = 1\n   w = 2\n"));
        // Unexpected deeper indent mid-block.
        assert!(!valid(b"if x:\n  y = 1\n    z = 2\n"));
        // Tabs rejected in indentation.
        assert!(!valid(b"if x:\n\ty = 1\n"));
    }

    #[test]
    fn compound_statements() {
        assert!(valid(b"def f():\n    pass\n"));
        assert!(valid(b"def f(a, b=2):\n    return a + b\n"));
        assert!(valid(b"if a:\n    pass\nelif b:\n    pass\nelse:\n    pass\n"));
        assert!(valid(b"while True:\n    break\n"));
        assert!(valid(b"for i in [1, 2]:\n    continue\n"));
        assert!(valid(b"class C(Base):\n    pass\n"));
        assert!(valid(b"if x: y = 1\n")); // inline suite
        assert!(!valid(b"def f:\n    pass\n"));
        assert!(!valid(b"for i in:\n    pass\n"));
        assert!(!valid(b"else:\n    pass\n"));
    }

    #[test]
    fn expressions() {
        assert!(valid(b"x = a or b and not c\n"));
        assert!(valid(b"y = 1 < 2 <= 3\n"));
        assert!(valid(b"z = a is not b\n"));
        assert!(valid(b"w = a not in s\n"));
        assert!(valid(b"v = -2 ** 3 // 4\n"));
        assert!(valid(b"u = f(1)[0].attr\n"));
        assert!(valid(b"t = lambda a, b: a + b\n"));
        assert!(valid(b"s = (1, 2, 3)\n"));
        assert!(valid(b"r = {1: 'a', 2: 'b'}\n"));
        assert!(valid(b"q = [x, y,]\n"));
        assert!(valid(b"p = 0x1F + 2.5e-3\n"));
        assert!(!valid(b"x = 1 +\n"));
        assert!(!valid(b"y = [1, 2\n"));
        assert!(!valid(b"z = {1: }\n"));
        assert!(!valid(b"w = 'open\n"));
    }

    #[test]
    fn nested_functions() {
        let prog = b"def outer(a):\n    def inner(b):\n        return b * 2\n    return inner(a)\n";
        assert!(valid(prog));
    }

    #[test]
    fn coverage_accounting() {
        let c = Python
            .run(b"def f(a):\n    if a > 0:\n        return [a, {1: 'x'}]\n    return None\n")
            .coverage;
        assert!(c.len() > 25);
        assert!(Python.coverable_lines() >= c.len());
    }
}
