//! The eight instrumented target programs of the fuzzing evaluation
//! (Section 8.3), standing in for the paper's real subjects.
//!
//! | Paper subject        | Stand-in                          |
//! |----------------------|-----------------------------------|
//! | GNU sed              | [`Sed`] — sed script parser       |
//! | flex                 | [`Flex`] — scanner-spec parser    |
//! | GNU grep             | [`Grep`] — BRE pattern compiler   |
//! | GNU bison            | [`Bison`] — grammar-file parser   |
//! | libxml-style parser  | [`Xml`] — XML document parser     |
//! | Ruby                 | [`Ruby`] — statement parser       |
//! | CPython              | [`Python`] — indentation-aware parser |
//! | SpiderMonkey (JS)    | [`JavaScript`] — ES-core parser   |
//!
//! All stand-ins are blackbox-equivalent for GLADE's purposes: the
//! algorithm only observes accept/reject behaviour (Section 1 of the
//! paper), and each stand-in accepts a faithful core of the corresponding
//! real input language.

mod bison;
mod flex;
mod grep;
mod javascript;
mod python;
mod ruby;
mod sed;
mod xml;

pub use bison::Bison;
pub use flex::Flex;
pub use grep::Grep;
pub use javascript::JavaScript;
pub use python::Python;
pub use ruby::Ruby;
pub use sed::Sed;
pub use xml::Xml;

use crate::target::Target;

/// All eight targets in the paper's Figure 6/7 order.
pub fn all_targets() -> Vec<Box<dyn Target>> {
    vec![
        Box::new(Sed),
        Box::new(Flex),
        Box::new(Grep),
        Box::new(Bison),
        Box::new(Xml),
        Box::new(Ruby),
        Box::new(Python),
        Box::new(JavaScript),
    ]
}

/// Looks up a target by name.
pub fn target_by_name(name: &str) -> Option<Box<dyn Target>> {
    all_targets().into_iter().find(|t| t.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_targets_with_unique_names() {
        let ts = all_targets();
        assert_eq!(ts.len(), 8);
        let mut names: Vec<&str> = ts.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn every_target_accepts_its_seeds_and_rejects_noise() {
        for t in all_targets() {
            for s in t.seeds() {
                assert!(
                    t.run(&s).valid,
                    "{}: seed {:?} rejected",
                    t.name(),
                    String::from_utf8_lossy(&s)
                );
            }
            // A byte blob no parser accepts (note: grep treats most bytes
            // as ordinary pattern characters, but an unclosed \( group is
            // always an error).
            assert!(!t.run(b"\\(\x01\x02\xff@@@[".as_slice()).valid, "{}", t.name());
        }
    }

    #[test]
    fn coverable_lines_are_positive_and_bound_observed() {
        for t in all_targets() {
            assert!(t.coverable_lines() > 20, "{}", t.name());
            let mut all = crate::cov::Coverage::new();
            for s in t.seeds() {
                all.merge(&t.run(&s).coverage);
            }
            assert!(!all.is_empty(), "{}", t.name());
            assert!(all.len() <= t.coverable_lines(), "{}", t.name());
        }
    }

    #[test]
    fn target_lookup_by_name() {
        assert!(target_by_name("sed").is_some());
        assert!(target_by_name("javascript").is_some());
        assert!(target_by_name("nope").is_none());
    }

    #[test]
    fn runs_never_panic_on_adversarial_bytes() {
        // Byte soup regression guard for all parsers.
        let nasty: &[&[u8]] = &[
            b"",
            b"\\",
            b"\xff\xfe\xfd",
            b"((((((((((",
            b"}}}}}",
            b"\"",
            b"'",
            b"<",
            b"<a",
            b"%%",
            b"%",
            b"s/",
            b"y/a/",
            b"[",
            b"[^",
            b"\\{",
            b"#{",
            b"0x",
            b"1e",
            b"def",
            b"if",
            b"do",
            b"a\tb",
            b"\n\n\n",
        ];
        for t in all_targets() {
            for s in nasty {
                let _ = t.run(s);
            }
        }
    }
}
