//! Instrumented stand-in for flex's scanner-specification parser.
//!
//! Accepts the classic three-section `.l` layout:
//!
//! ```text
//! definitions        name  regex | %option … | %s/%x STATES | %{ code %}
//! %%
//! rules              pattern  action      (action: `{…}` block, `|`, or code to EOL)
//! [%%
//! user code]         copied verbatim — anything goes
//! ```
//!
//! Patterns are validated as flex-style extended regexes with `"quoted"`
//! literals, `{name}` definition references, bracket expressions, and
//! `<STATE>` prefixes. An input is *valid* iff the whole specification
//! parses.

use crate::cov;
use crate::cov::{count_points, Coverage, RunOutcome};
use crate::target::Target;

const SRC: &str = include_str!("flex.rs");

/// The flex target program.
#[derive(Debug, Clone, Copy, Default)]
pub struct Flex;

impl Target for Flex {
    fn name(&self) -> &'static str {
        "flex"
    }

    fn run(&self, input: &[u8]) -> RunOutcome {
        let mut p = Parser { s: input, i: 0, cov: Coverage::new() };
        let valid = p.spec();
        RunOutcome { valid, coverage: p.cov }
    }

    fn coverable_lines(&self) -> usize {
        count_points(SRC)
    }

    fn source_lines(&self) -> usize {
        SRC.lines().count()
    }

    fn seeds(&self) -> Vec<Vec<u8>> {
        [
            &b"DIGIT [0-9]\n%%\n{DIGIT}+ { count(); }\n"[..],
            b"%option noyywrap\n%%\n\"if\" return IF;\n[a-z]+ |\n. ;\n%%\nint main() {}\n",
            b"%x STR\n%%\n<STR>[^\"]* { grab(); }\n",
        ]
        .iter()
        .map(|s| s.to_vec())
        .collect()
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
    cov: Coverage,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn starts_with(&self, p: &[u8]) -> bool {
        // `i` may run one past the end after a trailing backslash escape.
        self.s.get(self.i..).is_some_and(|rest| rest.starts_with(p))
    }

    fn eat_str(&mut self, p: &[u8]) -> bool {
        if self.starts_with(p) {
            self.i += p.len();
            true
        } else {
            false
        }
    }

    fn skip_to_eol(&mut self) {
        while self.peek().is_some_and(|b| b != b'\n') {
            self.i += 1;
        }
        self.eat(b'\n');
    }

    fn skip_blanks(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.i += 1;
        }
    }

    fn at_line_start_marker(&self) -> bool {
        self.starts_with(b"%%") && (self.i == 0 || self.s.get(self.i - 1) == Some(&b'\n'))
    }

    fn spec(&mut self) -> bool {
        cov!(self.cov);
        if !self.definitions() {
            return false;
        }
        if !self.rules() {
            return false;
        }
        cov!(self.cov);
        self.i == self.s.len()
    }

    fn definitions(&mut self) -> bool {
        cov!(self.cov);
        loop {
            if self.at_line_start_marker() {
                cov!(self.cov);
                self.i += 2;
                self.skip_blanks();
                return matches!(self.peek(), Some(b'\n') | None) && {
                    self.eat(b'\n');
                    true
                };
            }
            match self.peek() {
                None => {
                    cov!(self.cov);
                    return false; // missing %% separator
                }
                Some(b'\n') => {
                    cov!(self.cov);
                    self.i += 1;
                }
                Some(b'%') => {
                    cov!(self.cov);
                    if !self.percent_line() {
                        return false;
                    }
                }
                Some(b'/') if self.starts_with(b"/*") => {
                    cov!(self.cov);
                    if !self.c_comment() {
                        return false;
                    }
                }
                Some(b' ' | b'\t') => {
                    // Indented lines in the definitions section are copied
                    // C code — accepted verbatim.
                    cov!(self.cov);
                    self.skip_to_eol();
                }
                _ => {
                    cov!(self.cov);
                    if !self.definition_line() {
                        return false;
                    }
                }
            }
        }
    }

    fn percent_line(&mut self) -> bool {
        cov!(self.cov);
        debug_assert_eq!(self.peek(), Some(b'%'));
        if self.eat_str(b"%{") {
            cov!(self.cov);
            // Literal code block until %} at line start.
            loop {
                if self.s.get(self.i - 1) == Some(&b'\n') && self.eat_str(b"%}") {
                    cov!(self.cov);
                    self.skip_to_eol();
                    return true;
                }
                if self.peek().is_none() {
                    cov!(self.cov);
                    return false;
                }
                self.i += 1;
            }
        }
        self.i += 1; // consume '%'
        let start = self.i;
        while self.peek().is_some_and(|b| b.is_ascii_alphabetic()) {
            self.i += 1;
        }
        let word = &self.s[start..self.i];
        match word {
            b"option" | b"s" | b"x" | b"array" | b"pointer" => {
                cov!(self.cov);
                self.skip_to_eol();
                true
            }
            _ => {
                cov!(self.cov);
                false
            }
        }
    }

    fn c_comment(&mut self) -> bool {
        cov!(self.cov);
        self.i += 2;
        loop {
            if self.eat_str(b"*/") {
                cov!(self.cov);
                return true;
            }
            if self.peek().is_none() {
                cov!(self.cov);
                return false;
            }
            self.i += 1;
        }
    }

    fn definition_line(&mut self) -> bool {
        cov!(self.cov);
        // name  regex
        if !self.name() {
            cov!(self.cov);
            return false;
        }
        self.skip_blanks();
        if matches!(self.peek(), Some(b'\n') | None) {
            cov!(self.cov);
            return false; // definition without a body
        }
        if !self.regex(b'\n') {
            return false;
        }
        self.eat(b'\n');
        true
    }

    fn name(&mut self) -> bool {
        cov!(self.cov);
        let first = self.peek();
        if !first.is_some_and(|b| b.is_ascii_alphabetic() || b == b'_') {
            return false;
        }
        while self.peek().is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-') {
            self.i += 1;
        }
        true
    }

    fn rules(&mut self) -> bool {
        cov!(self.cov);
        loop {
            if self.at_line_start_marker() {
                cov!(self.cov);
                // Everything after the second %% is verbatim user code.
                self.i = self.s.len();
                return true;
            }
            match self.peek() {
                None => {
                    cov!(self.cov);
                    return true; // user-code section optional
                }
                Some(b'\n') => {
                    cov!(self.cov);
                    self.i += 1;
                }
                Some(b' ' | b'\t') => {
                    // Indented code lines are copied verbatim.
                    cov!(self.cov);
                    self.skip_to_eol();
                }
                _ => {
                    cov!(self.cov);
                    if !self.rule_line() {
                        return false;
                    }
                }
            }
        }
    }

    fn rule_line(&mut self) -> bool {
        cov!(self.cov);
        // Optional <STATE,STATE2> prefix.
        if self.eat(b'<') {
            cov!(self.cov);
            loop {
                if !self.name() && !self.eat(b'*') {
                    cov!(self.cov);
                    return false;
                }
                if self.eat(b'>') {
                    break;
                }
                if !self.eat(b',') {
                    cov!(self.cov);
                    return false;
                }
            }
        }
        if !self.regex_pattern_until_blank() {
            return false;
        }
        self.skip_blanks();
        self.action()
    }

    /// Flex patterns end at the first unquoted, unbracketed blank.
    fn regex_pattern_until_blank(&mut self) -> bool {
        cov!(self.cov);
        let start = self.i;
        loop {
            match self.peek() {
                None | Some(b'\n') | Some(b' ') | Some(b'\t') => break,
                Some(b'"') => {
                    cov!(self.cov);
                    self.i += 1;
                    loop {
                        match self.peek() {
                            None | Some(b'\n') => {
                                cov!(self.cov);
                                return false;
                            }
                            Some(b'\\') => {
                                self.i += 2;
                            }
                            Some(b'"') => {
                                self.i += 1;
                                break;
                            }
                            Some(_) => self.i += 1,
                        }
                    }
                }
                Some(b'[') => {
                    cov!(self.cov);
                    self.i += 1;
                    if self.eat(b'^') {
                        cov!(self.cov);
                    }
                    if self.eat(b']') {
                        cov!(self.cov);
                    }
                    loop {
                        match self.peek() {
                            None | Some(b'\n') => {
                                cov!(self.cov);
                                return false;
                            }
                            Some(b']') => {
                                self.i += 1;
                                break;
                            }
                            Some(b'\\') => self.i += 2,
                            Some(_) => self.i += 1,
                        }
                    }
                }
                Some(b'{') => {
                    cov!(self.cov);
                    self.i += 1;
                    // {name} reference or {m,n} bound.
                    let mut saw = false;
                    while self
                        .peek()
                        .is_some_and(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b','))
                    {
                        self.i += 1;
                        saw = true;
                    }
                    if !(saw && self.eat(b'}')) {
                        cov!(self.cov);
                        return false;
                    }
                }
                Some(b'\\') => {
                    cov!(self.cov);
                    self.i += 1;
                    if matches!(self.peek(), None | Some(b'\n')) {
                        return false;
                    }
                    self.i += 1;
                }
                Some(b'(') | Some(b')') | Some(b'*') | Some(b'+') | Some(b'?') | Some(b'|')
                | Some(b'.') | Some(b'^') | Some(b'$') | Some(b'/') => {
                    cov!(self.cov);
                    self.i += 1;
                }
                Some(_) => {
                    self.i += 1;
                }
            }
        }
        cov!(self.cov);
        self.i > start
    }

    fn action(&mut self) -> bool {
        cov!(self.cov);
        match self.peek() {
            Some(b'{') => {
                cov!(self.cov);
                let mut depth = 0u32;
                loop {
                    match self.peek() {
                        None => {
                            cov!(self.cov);
                            return false;
                        }
                        Some(b'{') => {
                            depth += 1;
                            self.i += 1;
                        }
                        Some(b'}') => {
                            depth -= 1;
                            self.i += 1;
                            if depth == 0 {
                                cov!(self.cov);
                                self.skip_to_eol();
                                return true;
                            }
                        }
                        Some(_) => self.i += 1,
                    }
                }
            }
            Some(b'|') => {
                cov!(self.cov);
                self.i += 1;
                self.skip_blanks();
                matches!(self.peek(), Some(b'\n') | None) && {
                    self.eat(b'\n');
                    true
                }
            }
            None | Some(b'\n') => {
                cov!(self.cov);
                // Empty action: discard the match.
                self.eat(b'\n');
                true
            }
            Some(_) => {
                cov!(self.cov);
                // Plain C code to end of line.
                self.skip_to_eol();
                true
            }
        }
    }

    /// Validates a definition regex to `stop` (exclusive).
    fn regex(&mut self, stop: u8) -> bool {
        cov!(self.cov);
        while self.peek().is_some_and(|b| b != stop) {
            match self.peek() {
                Some(b'[') => {
                    cov!(self.cov);
                    self.i += 1;
                    loop {
                        match self.peek() {
                            None | Some(b'\n') => {
                                cov!(self.cov);
                                return false;
                            }
                            Some(b']') => {
                                self.i += 1;
                                break;
                            }
                            Some(b'\\') => self.i += 2,
                            Some(_) => self.i += 1,
                        }
                    }
                }
                Some(b'\\') => {
                    cov!(self.cov);
                    self.i += 1;
                    if matches!(self.peek(), None | Some(b'\n')) {
                        return false;
                    }
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid(s: &[u8]) -> bool {
        Flex.run(s).valid
    }

    #[test]
    fn seeds_are_valid() {
        for s in Flex.seeds() {
            assert!(valid(&s), "seed {:?}", String::from_utf8_lossy(&s));
        }
    }

    #[test]
    fn minimal_specs() {
        assert!(valid(b"%%\n"));
        assert!(valid(b"%%\n. ;\n"));
        assert!(valid(b"%%"));
        assert!(!valid(b""));
        assert!(!valid(b"no separator\n"));
    }

    #[test]
    fn definitions_section() {
        assert!(valid(b"DIGIT [0-9]\nID [a-z][a-z0-9]*\n%%\n"));
        assert!(valid(b"%option yylineno\n%%\n"));
        assert!(valid(b"%x COMMENT STR\n%%\n"));
        assert!(valid(b"%{\n#include <stdio.h>\n%}\n%%\n"));
        assert!(valid(b"/* c comment */\n%%\n"));
        assert!(!valid(b"DIGIT\n%%\n")); // definition without body
        assert!(!valid(b"%bogus\n%%\n"));
        assert!(!valid(b"%{\nunclosed\n"));
    }

    #[test]
    fn rule_patterns() {
        assert!(valid(b"%%\n[0-9]+ { num(); }\n"));
        assert!(valid(b"%%\n\"quoted string\" return STR;\n"));
        assert!(valid(b"%%\n{NAME} |\n. ;\n"));
        assert!(valid(b"%%\na|b action();\n"));
        assert!(valid(b"%%\n<STR>[^\"]* more();\n"));
        assert!(valid(b"%%\n<A,B>x ;\n"));
        assert!(!valid(b"%%\n[unclosed action();\n"));
        assert!(!valid(b"%%\n\"unclosed lit\n"));
        assert!(!valid(b"%%\n{} ;\n"));
        assert!(!valid(b"%%\n<STR[^\"]* more();\n"));
    }

    #[test]
    fn actions() {
        assert!(valid(b"%%\nx { f(); { nested(); } }\n"));
        assert!(valid(b"%%\nx\n"));
        assert!(!valid(b"%%\nx { unbalanced(;\n"));
    }

    #[test]
    fn user_code_section_is_freeform() {
        assert!(valid(b"%%\nx ;\n%%\nany C code at all {{{ \n"));
    }

    #[test]
    fn coverage_accounting() {
        let c = Flex.run(b"D [0-9]\n%%\n{D}+ { n(); }\n\"s\" |\n. ;\n%%\ncode\n").coverage;
        assert!(c.len() > 12);
        assert!(Flex.coverable_lines() >= c.len());
    }
}
