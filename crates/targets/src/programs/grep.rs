//! Instrumented stand-in for GNU grep's pattern compiler (basic regular
//! expressions).
//!
//! Accepts POSIX BRE syntax with the common GNU extensions: ordinary
//! characters, `.`, anchors, bracket expressions (including `[:classes:]`
//! and ranges), `*` repetition, `\{m,n\}` interval bounds, groups
//! `\( … \)`, alternation `\|`, back-references `\1`–`\9` (validated
//! against the number of opened groups), and `\+ \? \< \> \b \w \s`
//! escapes. An input is *valid* iff the whole pattern compiles.

use crate::cov;
use crate::cov::{count_points, Coverage, RunOutcome};
use crate::target::Target;

const SRC: &str = include_str!("grep.rs");

/// The grep target program.
#[derive(Debug, Clone, Copy, Default)]
pub struct Grep;

impl Target for Grep {
    fn name(&self) -> &'static str {
        "grep"
    }

    fn run(&self, input: &[u8]) -> RunOutcome {
        let mut p = Parser { s: input, i: 0, cov: Coverage::new(), groups_open: 0, groups_done: 0 };
        let valid = p.pattern(true) && p.i == p.s.len() && p.groups_open == 0;
        RunOutcome { valid, coverage: p.cov }
    }

    fn coverable_lines(&self) -> usize {
        count_points(SRC)
    }

    fn source_lines(&self) -> usize {
        SRC.lines().count()
    }

    fn seeds(&self) -> Vec<Vec<u8>> {
        [&b"^ab*c$"[..], b"\\(x\\|y\\)z\\{2,4\\}", b"[a-f0-9]*\\.[[:alpha:]]"]
            .iter()
            .map(|s| s.to_vec())
            .collect()
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
    cov: Coverage,
    groups_open: u32,
    groups_done: u32,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.s.get(self.i + 1).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    /// pattern := branch ( \| branch )*
    fn pattern(&mut self, _top: bool) -> bool {
        cov!(self.cov);
        if !self.branch() {
            return false;
        }
        while self.peek() == Some(b'\\') && self.peek2() == Some(b'|') {
            cov!(self.cov);
            self.i += 2;
            if !self.branch() {
                return false;
            }
        }
        true
    }

    /// branch := piece*  (stops at \| or \) or end)
    fn branch(&mut self) -> bool {
        cov!(self.cov);
        // An anchor ^ is ordinary unless leading; accept either way (GNU).
        loop {
            match self.peek() {
                None => {
                    cov!(self.cov);
                    return true;
                }
                Some(b'\\') => match self.peek2() {
                    Some(b'|') | Some(b')') => {
                        cov!(self.cov);
                        return true;
                    }
                    _ => {
                        if !self.piece() {
                            return false;
                        }
                    }
                },
                Some(b'*') if self.at_branch_start() => {
                    // A leading * is a literal in BRE.
                    cov!(self.cov);
                    self.i += 1;
                }
                _ => {
                    if !self.piece() {
                        return false;
                    }
                }
            }
        }
    }

    fn at_branch_start(&self) -> bool {
        self.i == 0
    }

    /// piece := atom ( '*' | \{m,n\} )*
    fn piece(&mut self) -> bool {
        cov!(self.cov);
        if !self.atom() {
            return false;
        }
        loop {
            if self.eat(b'*') {
                cov!(self.cov);
            } else if self.peek() == Some(b'\\') && self.peek2() == Some(b'{') {
                cov!(self.cov);
                self.i += 2;
                if !self.interval() {
                    return false;
                }
            } else if self.peek() == Some(b'\\') && matches!(self.peek2(), Some(b'+') | Some(b'?'))
            {
                cov!(self.cov);
                self.i += 2;
            } else {
                break;
            }
        }
        true
    }

    /// interval := m [ ',' [n] ] '\}' with m ≤ n ≤ 255.
    fn interval(&mut self) -> bool {
        cov!(self.cov);
        let m = self.number();
        let Some(m) = m else {
            cov!(self.cov);
            return false;
        };
        let mut n = m;
        let mut unbounded = false;
        if self.eat(b',') {
            cov!(self.cov);
            match self.number() {
                Some(v) => n = v,
                None => {
                    cov!(self.cov);
                    unbounded = true;
                }
            }
        }
        if !(self.eat(b'\\') && self.eat(b'}')) {
            cov!(self.cov);
            return false;
        }
        if m > 255 || (!unbounded && (n > 255 || m > n)) {
            cov!(self.cov);
            return false;
        }
        true
    }

    fn number(&mut self) -> Option<u32> {
        let start = self.i;
        let mut v: u32 = 0;
        while let Some(b @ b'0'..=b'9') = self.peek() {
            v = v.saturating_mul(10).saturating_add(u32::from(b - b'0'));
            self.i += 1;
        }
        (self.i > start).then_some(v)
    }

    fn atom(&mut self) -> bool {
        match self.peek() {
            None => false,
            Some(b'[') => {
                cov!(self.cov);
                self.i += 1;
                self.bracket()
            }
            Some(b'\\') => {
                cov!(self.cov);
                self.i += 1;
                match self.peek() {
                    Some(b'(') => {
                        cov!(self.cov);
                        self.i += 1;
                        self.groups_open += 1;
                        if !self.pattern(false) {
                            return false;
                        }
                        if self.peek() == Some(b'\\') && self.peek2() == Some(b')') {
                            cov!(self.cov);
                            self.i += 2;
                            self.groups_open -= 1;
                            self.groups_done += 1;
                            true
                        } else {
                            cov!(self.cov);
                            false
                        }
                    }
                    Some(d @ b'1'..=b'9') => {
                        cov!(self.cov);
                        self.i += 1;
                        // Back-reference must name a completed group.
                        u32::from(d - b'0') <= self.groups_done
                    }
                    Some(
                        b'.' | b'*' | b'[' | b']' | b'^' | b'$' | b'\\' | b'w' | b'W' | b's' | b'S'
                        | b'<' | b'>' | b'b' | b'B' | b'`' | b'\'',
                    ) => {
                        cov!(self.cov);
                        self.i += 1;
                        true
                    }
                    _ => {
                        cov!(self.cov);
                        false
                    }
                }
            }
            // `)` `|` `{` are ordinary in BRE when not escaped.
            Some(_) => {
                cov!(self.cov);
                self.i += 1;
                true
            }
        }
    }

    fn bracket(&mut self) -> bool {
        cov!(self.cov);
        if self.eat(b'^') {
            cov!(self.cov);
        }
        if self.eat(b']') {
            cov!(self.cov);
        }
        loop {
            match self.peek() {
                None => {
                    cov!(self.cov);
                    return false;
                }
                Some(b']') => {
                    cov!(self.cov);
                    self.i += 1;
                    return true;
                }
                Some(b'[') if matches!(self.peek2(), Some(b':') | Some(b'.') | Some(b'=')) => {
                    cov!(self.cov);
                    let kind = self.peek2().expect("peeked");
                    self.i += 2;
                    while self.peek().is_some_and(|b| b != kind) {
                        self.i += 1;
                    }
                    if !(self.eat(kind) && self.eat(b']')) {
                        cov!(self.cov);
                        return false;
                    }
                }
                Some(lo) => {
                    cov!(self.cov);
                    self.i += 1;
                    // Range?
                    if self.peek() == Some(b'-') && self.peek2().is_some_and(|b| b != b']') {
                        cov!(self.cov);
                        self.i += 1;
                        let Some(hi) = self.peek() else {
                            return false;
                        };
                        self.i += 1;
                        if lo > hi {
                            cov!(self.cov);
                            return false;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid(s: &[u8]) -> bool {
        Grep.run(s).valid
    }

    #[test]
    fn seeds_are_valid() {
        for s in Grep.seeds() {
            assert!(valid(&s), "seed {:?}", String::from_utf8_lossy(&s));
        }
    }

    #[test]
    fn literals_and_dot() {
        assert!(valid(b"hello"));
        assert!(valid(b"h.llo"));
        assert!(valid(b""));
        assert!(valid(b"^start"));
        assert!(valid(b"end$"));
    }

    #[test]
    fn repetition() {
        assert!(valid(b"ab*"));
        assert!(valid(b"a**")); // BRE allows stacked stars
        assert!(valid(b"*a")); // leading * is literal
        assert!(valid(b"a\\{3\\}"));
        assert!(valid(b"a\\{3,\\}"));
        assert!(valid(b"a\\{3,5\\}"));
        assert!(!valid(b"a\\{5,3\\}"));
        assert!(!valid(b"a\\{999\\}"));
        assert!(!valid(b"a\\{3"));
        assert!(!valid(b"a\\{\\}"));
    }

    #[test]
    fn groups_and_alternation() {
        assert!(valid(b"\\(ab\\)"));
        assert!(valid(b"\\(a\\|b\\)c"));
        assert!(valid(b"\\(\\(a\\)b\\)"));
        assert!(!valid(b"\\(ab"));
        assert!(!valid(b"ab\\)"));
    }

    #[test]
    fn backreferences_check_group_count() {
        assert!(valid(b"\\(a\\)\\1"));
        assert!(valid(b"\\(a\\)\\(b\\)\\2"));
        assert!(!valid(b"\\1"));
        assert!(!valid(b"\\(a\\)\\2"));
    }

    #[test]
    fn bracket_expressions() {
        assert!(valid(b"[abc]"));
        assert!(valid(b"[^abc]"));
        assert!(valid(b"[]a]"));
        assert!(valid(b"[a-z]"));
        assert!(valid(b"[[:digit:]]"));
        assert!(valid(b"[[:alpha:]x]"));
        assert!(valid(b"[a-]")); // trailing - is literal
        assert!(!valid(b"[z-a]"));
        assert!(!valid(b"[abc"));
        assert!(!valid(b"[[:digit]"));
    }

    #[test]
    fn escapes() {
        assert!(valid(b"\\."));
        assert!(valid(b"\\\\"));
        assert!(valid(b"\\<word\\>"));
        assert!(valid(b"\\bx\\B"));
        assert!(valid(b"a\\+b\\?"));
        assert!(!valid(b"\\"));
        assert!(!valid(b"\\q"));
    }

    #[test]
    fn coverage_accounting() {
        let c = Grep.run(b"\\(a[0-9]\\)\\1\\{2,3\\}").coverage;
        assert!(c.len() > 10);
        assert!(Grep.coverable_lines() >= c.len());
    }
}
