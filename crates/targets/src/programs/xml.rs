//! Instrumented stand-in for an XML parser (the paper's `xml` subject).
//!
//! Accepts well-formed XML documents: optional XML declaration, misc
//! (comments / processing instructions), one root element with properly
//! nested and *name-matched* tags, attributes with quoted values and
//! per-element unique names, self-closing tags, character data with entity
//! references (`&lt; &gt; &amp; &apos; &quot; &#ddd; &#xhh;`), CDATA
//! sections, and comments (no `--` inside). Tag-name matching and attribute
//! uniqueness make the accepted language non-context-free, exactly the
//! situation discussed at the end of Section 8.3.

use crate::cov;
use crate::cov::{count_points, Coverage, RunOutcome};
use crate::target::Target;

const SRC: &str = include_str!("xml.rs");

/// The XML parser target.
#[derive(Debug, Clone, Copy, Default)]
pub struct Xml;

impl Target for Xml {
    fn name(&self) -> &'static str {
        "xml"
    }

    fn run(&self, input: &[u8]) -> RunOutcome {
        let mut p = Parser { s: input, i: 0, cov: Coverage::new(), depth: 0 };
        let valid = p.document();
        RunOutcome { valid, coverage: p.cov }
    }

    fn coverable_lines(&self) -> usize {
        count_points(SRC)
    }

    fn source_lines(&self) -> usize {
        SRC.lines().count()
    }

    fn seeds(&self) -> Vec<Vec<u8>> {
        [
            &b"<a>hi</a>"[..],
            b"<root a=\"1\"><b/>text<c x='y'>&lt;</c></root>",
            b"<?xml version=\"1.0\"?><!-- doc --><r><![CDATA[raw <>]]></r>",
        ]
        .iter()
        .map(|s| s.to_vec())
        .collect()
    }
}

const MAX_DEPTH: u32 = 200;

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
    cov: Coverage,
    depth: u32,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn starts_with(&self, p: &[u8]) -> bool {
        self.s[self.i..].starts_with(p)
    }

    fn eat_str(&mut self, p: &[u8]) -> bool {
        if self.starts_with(p) {
            self.i += p.len();
            true
        } else {
            false
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.i += 1;
        }
    }

    fn document(&mut self) -> bool {
        cov!(self.cov);
        if self.starts_with(b"<?xml") {
            cov!(self.cov);
            if !self.xml_decl() {
                return false;
            }
        }
        if !self.misc_star() {
            return false;
        }
        if !self.element() {
            cov!(self.cov);
            return false;
        }
        if !self.misc_star() {
            return false;
        }
        cov!(self.cov);
        self.i == self.s.len()
    }

    fn xml_decl(&mut self) -> bool {
        cov!(self.cov);
        debug_assert!(self.starts_with(b"<?xml"));
        self.i += 5;
        // Attribute-like version/encoding/standalone pseudo-attributes.
        loop {
            self.skip_ws();
            if self.eat_str(b"?>") {
                cov!(self.cov);
                return true;
            }
            if self.peek().is_none() {
                cov!(self.cov);
                return false;
            }
            if !self.attribute(&mut Vec::new()) {
                cov!(self.cov);
                return false;
            }
        }
    }

    fn misc_star(&mut self) -> bool {
        cov!(self.cov);
        loop {
            self.skip_ws();
            if self.starts_with(b"<!--") {
                cov!(self.cov);
                if !self.comment() {
                    return false;
                }
            } else if self.starts_with(b"<?") {
                cov!(self.cov);
                if !self.processing_instruction() {
                    return false;
                }
            } else {
                return true;
            }
        }
    }

    fn name(&mut self) -> Option<Vec<u8>> {
        cov!(self.cov);
        let start = self.i;
        let first = self.peek()?;
        if !(first.is_ascii_alphabetic() || first == b'_' || first == b':') {
            cov!(self.cov);
            return None;
        }
        self.i += 1;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b':' | b'-' | b'.'))
        {
            self.i += 1;
        }
        Some(self.s[start..self.i].to_vec())
    }

    fn element(&mut self) -> bool {
        cov!(self.cov);
        if self.depth >= MAX_DEPTH {
            cov!(self.cov);
            return false;
        }
        if !self.eat(b'<') {
            cov!(self.cov);
            return false;
        }
        let Some(open_name) = self.name() else {
            cov!(self.cov);
            return false;
        };
        let mut seen_attrs: Vec<Vec<u8>> = Vec::new();
        loop {
            let before = self.i;
            self.skip_ws();
            if self.eat_str(b"/>") {
                cov!(self.cov);
                return true;
            }
            if self.eat(b'>') {
                cov!(self.cov);
                break;
            }
            // Attributes require at least one whitespace separator.
            if self.i == before {
                cov!(self.cov);
                return false;
            }
            if self.eat_str(b"/>") {
                cov!(self.cov);
                return true;
            }
            if self.eat(b'>') {
                cov!(self.cov);
                break;
            }
            if !self.attribute(&mut seen_attrs) {
                cov!(self.cov);
                return false;
            }
        }
        self.depth += 1;
        if !self.content() {
            return false;
        }
        self.depth -= 1;
        // Closing tag, name must match.
        if !self.eat_str(b"</") {
            cov!(self.cov);
            return false;
        }
        let Some(close_name) = self.name() else {
            cov!(self.cov);
            return false;
        };
        if close_name != open_name {
            cov!(self.cov);
            return false;
        }
        self.skip_ws();
        cov!(self.cov);
        self.eat(b'>')
    }

    fn attribute(&mut self, seen: &mut Vec<Vec<u8>>) -> bool {
        cov!(self.cov);
        let Some(name) = self.name() else {
            cov!(self.cov);
            return false;
        };
        // XML well-formedness: attribute names unique per element.
        if seen.contains(&name) {
            cov!(self.cov);
            return false;
        }
        seen.push(name);
        self.skip_ws();
        if !self.eat(b'=') {
            cov!(self.cov);
            return false;
        }
        self.skip_ws();
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                cov!(self.cov);
                self.i += 1;
                q
            }
            _ => {
                cov!(self.cov);
                return false;
            }
        };
        loop {
            match self.peek() {
                None => {
                    cov!(self.cov);
                    return false;
                }
                Some(b) if b == quote => {
                    cov!(self.cov);
                    self.i += 1;
                    return true;
                }
                Some(b'<') => {
                    cov!(self.cov);
                    return false;
                }
                Some(b'&') => {
                    cov!(self.cov);
                    if !self.entity_ref() {
                        return false;
                    }
                }
                Some(_) => self.i += 1,
            }
        }
    }

    fn content(&mut self) -> bool {
        cov!(self.cov);
        loop {
            match self.peek() {
                None => {
                    cov!(self.cov);
                    return false; // missing close tag
                }
                Some(b'<') => {
                    if self.starts_with(b"</") {
                        cov!(self.cov);
                        return true;
                    } else if self.starts_with(b"<!--") {
                        cov!(self.cov);
                        if !self.comment() {
                            return false;
                        }
                    } else if self.starts_with(b"<![CDATA[") {
                        cov!(self.cov);
                        if !self.cdata() {
                            return false;
                        }
                    } else if self.starts_with(b"<?") {
                        cov!(self.cov);
                        if !self.processing_instruction() {
                            return false;
                        }
                    } else {
                        cov!(self.cov);
                        if !self.element() {
                            return false;
                        }
                    }
                }
                Some(b'&') => {
                    cov!(self.cov);
                    if !self.entity_ref() {
                        return false;
                    }
                }
                Some(b'>') => {
                    // Bare > is tolerated in character data by real parsers.
                    cov!(self.cov);
                    self.i += 1;
                }
                Some(_) => {
                    self.i += 1;
                }
            }
        }
    }

    fn entity_ref(&mut self) -> bool {
        cov!(self.cov);
        debug_assert_eq!(self.peek(), Some(b'&'));
        self.i += 1;
        if self.eat(b'#') {
            cov!(self.cov);
            if self.eat(b'x') {
                cov!(self.cov);
                let start = self.i;
                while self.peek().is_some_and(|b| b.is_ascii_hexdigit()) {
                    self.i += 1;
                }
                if self.i == start {
                    return false;
                }
            } else {
                let start = self.i;
                while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    self.i += 1;
                }
                if self.i == start {
                    cov!(self.cov);
                    return false;
                }
            }
            return self.eat(b';');
        }
        // Named entities.
        for name in [&b"lt;"[..], b"gt;", b"amp;", b"apos;", b"quot;"] {
            if self.eat_str(name) {
                cov!(self.cov);
                return true;
            }
        }
        cov!(self.cov);
        false
    }

    fn comment(&mut self) -> bool {
        cov!(self.cov);
        debug_assert!(self.starts_with(b"<!--"));
        self.i += 4;
        loop {
            if self.eat_str(b"-->") {
                cov!(self.cov);
                return true;
            }
            if self.starts_with(b"--") {
                cov!(self.cov);
                return false; // "--" forbidden inside comments
            }
            if self.peek().is_none() {
                cov!(self.cov);
                return false;
            }
            self.i += 1;
        }
    }

    fn cdata(&mut self) -> bool {
        cov!(self.cov);
        debug_assert!(self.starts_with(b"<![CDATA["));
        self.i += 9;
        loop {
            if self.eat_str(b"]]>") {
                cov!(self.cov);
                return true;
            }
            if self.peek().is_none() {
                cov!(self.cov);
                return false;
            }
            self.i += 1;
        }
    }

    fn processing_instruction(&mut self) -> bool {
        cov!(self.cov);
        debug_assert!(self.starts_with(b"<?"));
        self.i += 2;
        if self.name().is_none() {
            cov!(self.cov);
            return false;
        }
        loop {
            if self.eat_str(b"?>") {
                cov!(self.cov);
                return true;
            }
            if self.peek().is_none() {
                cov!(self.cov);
                return false;
            }
            self.i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid(s: &[u8]) -> bool {
        Xml.run(s).valid
    }

    #[test]
    fn seeds_are_valid() {
        for s in Xml.seeds() {
            assert!(valid(&s), "seed {:?}", String::from_utf8_lossy(&s));
        }
    }

    #[test]
    fn basic_elements() {
        assert!(valid(b"<a></a>"));
        assert!(valid(b"<a>text</a>"));
        assert!(valid(b"<a><b></b></a>"));
        assert!(valid(b"<a/>"));
        assert!(valid(b"<a:b-c.d_e/>"));
        assert!(!valid(b""));
        assert!(!valid(b"text only"));
        assert!(!valid(b"<a>"));
        assert!(!valid(b"</a>"));
    }

    #[test]
    fn tag_names_must_match() {
        assert!(valid(b"<a><a></a></a>"));
        assert!(!valid(b"<a></b>"));
        assert!(!valid(b"<a><b></a></b>"));
    }

    #[test]
    fn attributes() {
        assert!(valid(b"<a x=\"1\"></a>"));
        assert!(valid(b"<a x='1' y=\"2\"/>"));
        assert!(valid(b"<a x=\"a &lt; b\"/>"));
        // Duplicate attribute names are rejected (Section 8.3's example).
        assert!(!valid(b"<a a=\"\" a=\"\"></a>"));
        assert!(!valid(b"<a x=1/>"));
        assert!(!valid(b"<a x=\"1/>"));
        assert!(!valid(b"<a x=\"<\"/>"));
        assert!(!valid(b"<ax=\"1\"/>")); // missing space: parsed as name
    }

    #[test]
    fn entities() {
        assert!(valid(b"<a>&lt;&gt;&amp;&apos;&quot;</a>"));
        assert!(valid(b"<a>&#60;&#x3C;</a>"));
        assert!(!valid(b"<a>&unknown;</a>"));
        assert!(!valid(b"<a>&#;</a>"));
        assert!(!valid(b"<a>&#x;</a>"));
        assert!(!valid(b"<a>& </a>"));
    }

    #[test]
    fn comments_and_cdata() {
        assert!(valid(b"<a><!-- ok --></a>"));
        assert!(valid(b"<!-- before --><a/>"));
        assert!(valid(b"<a><![CDATA[<raw>&]]></a>"));
        assert!(!valid(b"<a><!-- double -- dash --></a>"));
        assert!(!valid(b"<a><!-- unterminated</a>"));
        assert!(!valid(b"<a><![CDATA[open</a>"));
    }

    #[test]
    fn processing_instructions_and_decl() {
        assert!(valid(b"<?xml version=\"1.0\"?><a/>"));
        assert!(valid(b"<?xml version=\"1.0\" encoding=\"UTF-8\"?><a/>"));
        assert!(valid(b"<a><?php echo ?></a>"));
        assert!(!valid(b"<?xml version=\"1.0\"?>"));
        assert!(!valid(b"<??></a>"));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(!valid(b"<a/>junk"));
        assert!(!valid(b"<a/><b/>"));
        assert!(valid(b"<a/> <!-- trailing comment ok -->"));
    }

    #[test]
    fn depth_limit_guards_recursion() {
        let deep_open: Vec<u8> = b"<a>".repeat(300);
        let deep_close: Vec<u8> = b"</a>".repeat(300);
        let mut doc = deep_open;
        doc.extend_from_slice(&deep_close);
        assert!(!valid(&doc));
        let ok: Vec<u8> = [b"<a>".repeat(50), b"</a>".repeat(50)].concat();
        assert!(valid(&ok));
    }

    #[test]
    fn coverage_accounting() {
        let c = Xml.run(b"<?xml version=\"1.0\"?><a x='1'><!--c--><b/>&lt;</a>").coverage;
        assert!(c.len() > 15);
        assert!(Xml.coverable_lines() >= c.len());
    }
}
