//! Instrumented stand-in for bison's grammar-file parser.
//!
//! Accepts the classic three-section `.y` layout:
//!
//! ```text
//! declarations       %token NAME…, %left/%right/%nonassoc, %start NAME,
//!                    %type <tag> NAME…, %union { … }, %{ code %}, %define …
//! %%
//! grammar rules      name : symbols | symbols { action } ;  ('char' and
//!                    "string" literal tokens allowed; %prec NAME; empty
//!                    alternatives allowed)
//! [%%
//! epilogue]          copied verbatim
//! ```
//!
//! An input is *valid* iff the whole grammar file parses.

use crate::cov;
use crate::cov::{count_points, Coverage, RunOutcome};
use crate::target::Target;

const SRC: &str = include_str!("bison.rs");

/// The bison target program.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bison;

impl Target for Bison {
    fn name(&self) -> &'static str {
        "bison"
    }

    fn run(&self, input: &[u8]) -> RunOutcome {
        let mut p = Parser { s: input, i: 0, cov: Coverage::new() };
        let valid = p.file();
        RunOutcome { valid, coverage: p.cov }
    }

    fn coverable_lines(&self) -> usize {
        count_points(SRC)
    }

    fn source_lines(&self) -> usize {
        SRC.lines().count()
    }

    fn seeds(&self) -> Vec<Vec<u8>> {
        // Deliberately basic (as in the paper, seeds are small documentation
        // examples): declarations like %left/%union/%prec, literal strings,
        // actions, and the epilogue are left for the fuzzers to discover.
        [
            &b"%token NUM\n%%\nexpr : expr '+' expr | NUM ;\n"[..],
            b"%start unit\n%%\nunit : unit stmt | ;\n",
        ]
        .iter()
        .map(|s| s.to_vec())
        .collect()
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
    cov: Coverage,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn starts_with(&self, p: &[u8]) -> bool {
        self.s.get(self.i..).is_some_and(|rest| rest.starts_with(p))
    }

    fn eat_str(&mut self, p: &[u8]) -> bool {
        if self.starts_with(p) {
            self.i += p.len();
            true
        } else {
            false
        }
    }

    fn skip_ws_and_comments(&mut self) -> bool {
        cov!(self.cov);
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => self.i += 1,
                Some(b'/') if self.starts_with(b"/*") => {
                    cov!(self.cov);
                    self.i += 2;
                    loop {
                        if self.eat_str(b"*/") {
                            break;
                        }
                        if self.peek().is_none() {
                            cov!(self.cov);
                            return false;
                        }
                        self.i += 1;
                    }
                }
                Some(b'/') if self.starts_with(b"//") => {
                    cov!(self.cov);
                    while self.peek().is_some_and(|b| b != b'\n') {
                        self.i += 1;
                    }
                }
                _ => return true,
            }
        }
    }

    fn ident(&mut self) -> bool {
        cov!(self.cov);
        if !self.peek().is_some_and(|b| b.is_ascii_alphabetic() || b == b'_') {
            return false;
        }
        while self.peek().is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'.') {
            self.i += 1;
        }
        true
    }

    fn char_literal(&mut self) -> bool {
        cov!(self.cov);
        debug_assert_eq!(self.peek(), Some(b'\''));
        self.i += 1;
        if self.eat(b'\\') {
            cov!(self.cov);
            if self.peek().is_none() {
                return false;
            }
            self.i += 1;
        } else {
            if matches!(self.peek(), None | Some(b'\'') | Some(b'\n')) {
                cov!(self.cov);
                return false;
            }
            self.i += 1;
        }
        self.eat(b'\'')
    }

    fn string_literal(&mut self) -> bool {
        cov!(self.cov);
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.i += 1;
        loop {
            match self.peek() {
                None | Some(b'\n') => {
                    cov!(self.cov);
                    return false;
                }
                Some(b'"') => {
                    self.i += 1;
                    return true;
                }
                Some(b'\\') => {
                    self.i += 2;
                }
                Some(_) => self.i += 1,
            }
        }
    }

    fn balanced_braces(&mut self) -> bool {
        cov!(self.cov);
        debug_assert_eq!(self.peek(), Some(b'{'));
        let mut depth = 0u32;
        loop {
            match self.peek() {
                None => {
                    cov!(self.cov);
                    return false;
                }
                Some(b'{') => {
                    depth += 1;
                    self.i += 1;
                }
                Some(b'}') => {
                    depth -= 1;
                    self.i += 1;
                    if depth == 0 {
                        cov!(self.cov);
                        return true;
                    }
                }
                Some(b'\'') => {
                    cov!(self.cov);
                    if !self.char_literal() {
                        return false;
                    }
                }
                Some(b'"') => {
                    cov!(self.cov);
                    if !self.string_literal() {
                        return false;
                    }
                }
                Some(_) => self.i += 1,
            }
        }
    }

    fn file(&mut self) -> bool {
        cov!(self.cov);
        if !self.declarations() {
            return false;
        }
        if !self.rules() {
            return false;
        }
        // Optional epilogue after a second %%: verbatim.
        cov!(self.cov);
        true
    }

    fn declarations(&mut self) -> bool {
        cov!(self.cov);
        loop {
            if !self.skip_ws_and_comments() {
                return false;
            }
            if self.eat_str(b"%%") {
                cov!(self.cov);
                return true;
            }
            match self.peek() {
                None => {
                    cov!(self.cov);
                    return false; // missing %%
                }
                Some(b'%') => {
                    cov!(self.cov);
                    if !self.declaration() {
                        return false;
                    }
                }
                _ => {
                    cov!(self.cov);
                    return false; // stray tokens before %%
                }
            }
        }
    }

    fn declaration(&mut self) -> bool {
        cov!(self.cov);
        if self.eat_str(b"%{") {
            cov!(self.cov);
            loop {
                if self.eat_str(b"%}") {
                    cov!(self.cov);
                    return true;
                }
                if self.peek().is_none() {
                    cov!(self.cov);
                    return false;
                }
                self.i += 1;
            }
        }
        self.i += 1; // '%'
        let start = self.i;
        while self.peek().is_some_and(|b| b.is_ascii_alphabetic() || b == b'-') {
            self.i += 1;
        }
        let word = self.s[start..self.i].to_vec();
        match word.as_slice() {
            b"token" | b"left" | b"right" | b"nonassoc" => {
                cov!(self.cov);
                self.optional_tag() && self.symbol_list()
            }
            b"type" => {
                cov!(self.cov);
                if !self.optional_tag() {
                    return false;
                }
                self.symbol_list()
            }
            b"start" => {
                cov!(self.cov);
                if !self.skip_ws_and_comments() {
                    return false;
                }
                self.ident()
            }
            b"union" => {
                cov!(self.cov);
                if !self.skip_ws_and_comments() {
                    return false;
                }
                if self.peek() == Some(b'{') {
                    self.balanced_braces()
                } else {
                    cov!(self.cov);
                    false
                }
            }
            b"define" | b"expect" | b"verbose" | b"debug" | b"defines" | b"locations"
            | b"pure-parser" | b"error-verbose" => {
                cov!(self.cov);
                // Rest of line is free-form.
                while self.peek().is_some_and(|b| b != b'\n') {
                    self.i += 1;
                }
                true
            }
            _ => {
                cov!(self.cov);
                false
            }
        }
    }

    fn optional_tag(&mut self) -> bool {
        cov!(self.cov);
        if !self.skip_ws_and_comments() {
            return false;
        }
        if self.eat(b'<') {
            cov!(self.cov);
            if !self.ident() {
                return false;
            }
            return self.eat(b'>');
        }
        true
    }

    fn symbol_list(&mut self) -> bool {
        cov!(self.cov);
        let mut count = 0usize;
        loop {
            if !self.skip_ws_and_comments() {
                return false;
            }
            match self.peek() {
                Some(b'\'') => {
                    cov!(self.cov);
                    if !self.char_literal() {
                        return false;
                    }
                    count += 1;
                }
                Some(b'"') => {
                    cov!(self.cov);
                    if !self.string_literal() {
                        return false;
                    }
                    count += 1;
                }
                Some(b) if b.is_ascii_alphabetic() || b == b'_' => {
                    cov!(self.cov);
                    if !self.ident() {
                        return false;
                    }
                    count += 1;
                }
                _ => break,
            }
        }
        cov!(self.cov);
        count > 0
    }

    fn rules(&mut self) -> bool {
        cov!(self.cov);
        let mut rule_count = 0usize;
        loop {
            if !self.skip_ws_and_comments() {
                return false;
            }
            if self.eat_str(b"%%") {
                cov!(self.cov);
                // Epilogue: anything goes.
                self.i = self.s.len();
                return rule_count > 0;
            }
            if self.peek().is_none() {
                cov!(self.cov);
                return rule_count > 0;
            }
            if !self.rule() {
                return false;
            }
            rule_count += 1;
        }
    }

    fn rule(&mut self) -> bool {
        cov!(self.cov);
        if !self.ident() {
            cov!(self.cov);
            return false;
        }
        if !self.skip_ws_and_comments() {
            return false;
        }
        if !self.eat(b':') {
            cov!(self.cov);
            return false;
        }
        loop {
            // One alternative: a sequence of symbols/actions (may be empty).
            loop {
                if !self.skip_ws_and_comments() {
                    return false;
                }
                match self.peek() {
                    Some(b'\'') => {
                        cov!(self.cov);
                        if !self.char_literal() {
                            return false;
                        }
                    }
                    Some(b'"') => {
                        cov!(self.cov);
                        if !self.string_literal() {
                            return false;
                        }
                    }
                    Some(b'{') => {
                        cov!(self.cov);
                        if !self.balanced_braces() {
                            return false;
                        }
                    }
                    Some(b'%') => {
                        cov!(self.cov);
                        if !self.eat_str(b"%prec") {
                            return false;
                        }
                        if !self.skip_ws_and_comments() {
                            return false;
                        }
                        if !self.ident() {
                            return false;
                        }
                    }
                    Some(b) if b.is_ascii_alphabetic() || b == b'_' => {
                        cov!(self.cov);
                        if !self.ident() {
                            return false;
                        }
                    }
                    _ => break,
                }
            }
            match self.peek() {
                Some(b'|') => {
                    cov!(self.cov);
                    self.i += 1;
                }
                Some(b';') => {
                    cov!(self.cov);
                    self.i += 1;
                    return true;
                }
                _ => {
                    cov!(self.cov);
                    return false;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid(s: &[u8]) -> bool {
        Bison.run(s).valid
    }

    #[test]
    fn seeds_are_valid() {
        for s in Bison.seeds() {
            assert!(valid(&s), "seed {:?}", String::from_utf8_lossy(&s));
        }
    }

    #[test]
    fn minimal_grammar() {
        assert!(valid(b"%%\nr : ;\n"));
        assert!(valid(b"%% r : 'x' ;"));
        assert!(!valid(b"%%\n")); // no rules
        assert!(!valid(b""));
        assert!(!valid(b"r : ;")); // missing %%
    }

    #[test]
    fn declarations() {
        assert!(valid(b"%token A B C\n%%\nr : A ;\n"));
        assert!(valid(b"%left '+' '-'\n%right '^'\n%%\nr : ;\n"));
        assert!(valid(b"%start r\n%%\nr : ;\n"));
        assert!(valid(b"%union { int i; char *s; }\n%%\nr : ;\n"));
        assert!(valid(b"%type <i> expr\n%%\nexpr : ;\n"));
        assert!(valid(b"%define api.pure\n%%\nr : ;\n"));
        assert!(!valid(b"%token\n%%\nr : ;\n")); // empty symbol list
        assert!(!valid(b"%bogus x\n%%\nr : ;\n"));
        assert!(!valid(b"%union missing\n%%\nr : ;\n"));
    }

    #[test]
    fn rules_section() {
        assert!(valid(b"%%\nexpr : expr '+' term | term ;\nterm : NUM ;\n"));
        assert!(valid(b"%%\nr : a b c { act($1, $2); } ;\n"));
        assert!(valid(b"%%\nr : | x ;\n")); // empty first alternative
        assert!(valid(b"%%\nr : x %prec HIGH ;\n"));
        assert!(valid(b"%%\nr : \"str\" ;\n"));
        assert!(!valid(b"%%\nr : x\n")); // missing ;
        assert!(!valid(b"%%\n: x ;\n")); // missing name
        assert!(!valid(b"%%\nr x ;\n")); // missing colon
        assert!(!valid(b"%%\nr : { unbalanced ;\n"));
        assert!(!valid(b"%%\nr : 'ab' ;\n")); // bad char literal
    }

    #[test]
    fn comments_allowed() {
        assert!(valid(b"/* c */\n%token A // line\n%%\nr : A ;\n"));
        assert!(!valid(b"/* unterminated\n%%\nr : ;\n"));
    }

    #[test]
    fn epilogue_is_freeform() {
        assert!(valid(b"%%\nr : ;\n%%\nint main() { return 0; }\n"));
        assert!(valid(b"%%\nr : ;\n%%\n{{{ not balanced, still fine"));
    }

    #[test]
    fn coverage_accounting() {
        let c = Bison.run(b"%token A\n%left '+'\n%%\nr : A '+' A { go(); } | ;\n").coverage;
        assert!(c.len() > 12);
        assert!(Bison.coverable_lines() >= c.len());
    }
}
