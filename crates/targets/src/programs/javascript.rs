//! Instrumented stand-in for a JavaScript parser front-end (the paper's
//! SpiderMonkey subject).
//!
//! Accepts a representative core of ECMAScript statement syntax: function
//! declarations and expressions, `var/let/const` declarations, `if/else`,
//! `while`, `do…while`, `for` (classic three-clause), `return`, blocks,
//! expression statements, and an expression grammar with assignment,
//! ternaries, the usual binary precedence levels, unary and postfix
//! operators, calls, member access, indexing, and object/array/string/
//! number literals. An input is *valid* iff the whole program parses.

use crate::cov;
use crate::cov::{count_points, Coverage, RunOutcome};
use crate::target::Target;

const SRC: &str = include_str!("javascript.rs");

/// The JavaScript front-end target.
#[derive(Debug, Clone, Copy, Default)]
pub struct JavaScript;

impl Target for JavaScript {
    fn name(&self) -> &'static str {
        "javascript"
    }

    fn run(&self, input: &[u8]) -> RunOutcome {
        let mut p = Parser { s: input, i: 0, cov: Coverage::new(), depth: 0 };
        let valid = p.program();
        RunOutcome { valid, coverage: p.cov }
    }

    fn coverable_lines(&self) -> usize {
        count_points(SRC)
    }

    fn source_lines(&self) -> usize {
        SRC.lines().count()
    }

    fn seeds(&self) -> Vec<Vec<u8>> {
        [
            &b"function add(a, b) { return a + b; }\nvar x = add(1, 2);\n"[..],
            b"var obj = {k: 1, s: \"two\"};\nfor (var i = 0; i < 10; i = i + 1) { f(obj.k); }\n",
            b"if (x > 0) { y = x ? 1 : -1; } else { while (y < 3) { y = y + 1; } }\n",
        ]
        .iter()
        .map(|s| s.to_vec())
        .collect()
    }
}

const MAX_DEPTH: u32 = 150;

const KEYWORDS: &[&[u8]] = &[
    b"function",
    b"var",
    b"let",
    b"const",
    b"if",
    b"else",
    b"while",
    b"do",
    b"for",
    b"return",
    b"true",
    b"false",
    b"null",
    b"undefined",
    b"this",
    b"new",
    b"typeof",
    b"break",
    b"continue",
];

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
    cov: Coverage,
    depth: u32,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn starts_with(&self, p: &[u8]) -> bool {
        self.s.get(self.i..).is_some_and(|rest| rest.starts_with(p))
    }

    fn skip_ws(&mut self) -> bool {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => self.i += 1,
                Some(b'/') if self.starts_with(b"//") => {
                    cov!(self.cov);
                    while self.peek().is_some_and(|b| b != b'\n') {
                        self.i += 1;
                    }
                }
                Some(b'/') if self.starts_with(b"/*") => {
                    cov!(self.cov);
                    self.i += 2;
                    loop {
                        if self.starts_with(b"*/") {
                            self.i += 2;
                            break;
                        }
                        if self.peek().is_none() {
                            cov!(self.cov);
                            return false;
                        }
                        self.i += 1;
                    }
                }
                _ => return true,
            }
        }
    }

    fn peek_word(&self) -> Option<&[u8]> {
        let b = self.peek()?;
        if !(b.is_ascii_alphabetic() || b == b'_' || b == b'$') {
            return None;
        }
        let mut j = self.i;
        while self.s.get(j).is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_' || c == b'$') {
            j += 1;
        }
        Some(&self.s[self.i..j])
    }

    fn eat_word(&mut self, w: &[u8]) -> bool {
        if self.peek_word() == Some(w) {
            self.i += w.len();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> bool {
        cov!(self.cov);
        let len = match self.peek_word() {
            Some(w) if !KEYWORDS.contains(&w) => w.len(),
            _ => return false,
        };
        self.i += len;
        true
    }

    fn program(&mut self) -> bool {
        cov!(self.cov);
        loop {
            if !self.skip_ws() {
                return false;
            }
            if self.peek().is_none() {
                cov!(self.cov);
                return true;
            }
            if !self.statement() {
                return false;
            }
        }
    }

    fn statement(&mut self) -> bool {
        cov!(self.cov);
        if self.depth >= MAX_DEPTH {
            cov!(self.cov);
            return false;
        }
        self.depth += 1;
        let ok = self.statement_inner();
        self.depth -= 1;
        ok
    }

    fn statement_inner(&mut self) -> bool {
        cov!(self.cov);
        if !self.skip_ws() {
            return false;
        }
        match self.peek_word() {
            Some(b"function") => {
                cov!(self.cov);
                self.i += 8;
                self.function_rest(true)
            }
            Some(w @ (b"var" | b"let" | b"const")) => {
                let n = w.len();
                cov!(self.cov);
                self.i += n;
                self.var_declaration()
            }
            Some(b"if") => {
                cov!(self.cov);
                self.i += 2;
                self.if_statement()
            }
            Some(b"while") => {
                cov!(self.cov);
                self.i += 5;
                if !self.paren_expr() {
                    return false;
                }
                self.statement()
            }
            Some(b"do") => {
                cov!(self.cov);
                self.i += 2;
                if !self.statement() {
                    return false;
                }
                if !self.skip_ws() {
                    return false;
                }
                if !self.eat_word(b"while") {
                    cov!(self.cov);
                    return false;
                }
                if !self.paren_expr() {
                    return false;
                }
                self.semicolon()
            }
            Some(b"for") => {
                cov!(self.cov);
                self.i += 3;
                self.for_statement()
            }
            Some(b"return") => {
                cov!(self.cov);
                self.i += 6;
                if !self.skip_ws() {
                    return false;
                }
                if matches!(self.peek(), Some(b';') | Some(b'}') | None) {
                    return self.semicolon();
                }
                if !self.expr() {
                    return false;
                }
                self.semicolon()
            }
            Some(w @ (b"break" | b"continue")) => {
                let n = w.len();
                cov!(self.cov);
                self.i += n;
                self.semicolon()
            }
            _ => match self.peek() {
                Some(b'{') => {
                    cov!(self.cov);
                    self.block()
                }
                Some(b';') => {
                    cov!(self.cov);
                    self.i += 1;
                    true
                }
                None => {
                    cov!(self.cov);
                    false
                }
                _ => {
                    cov!(self.cov);
                    if !self.expr() {
                        return false;
                    }
                    self.semicolon()
                }
            },
        }
    }

    /// Automatic-semicolon-insertion-lite: an explicit `;`, or a `}` /
    /// newline / EOF boundary.
    fn semicolon(&mut self) -> bool {
        cov!(self.cov);
        let before_ws = self.i;
        if !self.skip_ws() {
            return false;
        }
        if self.eat(b';') {
            cov!(self.cov);
            return true;
        }
        if matches!(self.peek(), Some(b'}') | None) {
            cov!(self.cov);
            return true;
        }
        // Newline between the statement end and the next token inserts a
        // semicolon.
        if self.s[before_ws..self.i].contains(&b'\n') {
            cov!(self.cov);
            return true;
        }
        cov!(self.cov);
        false
    }

    fn block(&mut self) -> bool {
        cov!(self.cov);
        debug_assert_eq!(self.peek(), Some(b'{'));
        self.i += 1;
        loop {
            if !self.skip_ws() {
                return false;
            }
            if self.eat(b'}') {
                cov!(self.cov);
                return true;
            }
            if self.peek().is_none() {
                cov!(self.cov);
                return false;
            }
            if !self.statement() {
                return false;
            }
        }
    }

    fn function_rest(&mut self, need_name: bool) -> bool {
        cov!(self.cov);
        if !self.skip_ws() {
            return false;
        }
        let has_name = self.ident();
        if need_name && !has_name {
            cov!(self.cov);
            return false;
        }
        if !self.skip_ws() {
            return false;
        }
        if !self.eat(b'(') {
            cov!(self.cov);
            return false;
        }
        if !self.skip_ws() {
            return false;
        }
        if !self.eat(b')') {
            loop {
                if !self.skip_ws() {
                    return false;
                }
                if !self.ident() {
                    cov!(self.cov);
                    return false;
                }
                if !self.skip_ws() {
                    return false;
                }
                if self.eat(b')') {
                    break;
                }
                if !self.eat(b',') {
                    cov!(self.cov);
                    return false;
                }
            }
        }
        if !self.skip_ws() {
            return false;
        }
        if self.peek() != Some(b'{') {
            cov!(self.cov);
            return false;
        }
        self.block()
    }

    fn var_declaration(&mut self) -> bool {
        cov!(self.cov);
        loop {
            if !self.skip_ws() {
                return false;
            }
            if !self.ident() {
                cov!(self.cov);
                return false;
            }
            if !self.skip_ws() {
                return false;
            }
            if self.eat(b'=') {
                cov!(self.cov);
                if !self.assignment_expr() {
                    return false;
                }
                if !self.skip_ws() {
                    return false;
                }
            }
            if !self.eat(b',') {
                break;
            }
        }
        self.semicolon()
    }

    fn paren_expr(&mut self) -> bool {
        cov!(self.cov);
        if !self.skip_ws() {
            return false;
        }
        if !self.eat(b'(') {
            cov!(self.cov);
            return false;
        }
        if !self.expr() {
            return false;
        }
        if !self.skip_ws() {
            return false;
        }
        self.eat(b')')
    }

    fn if_statement(&mut self) -> bool {
        cov!(self.cov);
        if !self.paren_expr() {
            return false;
        }
        if !self.statement() {
            return false;
        }
        let save = self.i;
        if !self.skip_ws() {
            return false;
        }
        if self.eat_word(b"else") {
            cov!(self.cov);
            return self.statement();
        }
        self.i = save;
        true
    }

    fn for_statement(&mut self) -> bool {
        cov!(self.cov);
        if !self.skip_ws() {
            return false;
        }
        if !self.eat(b'(') {
            cov!(self.cov);
            return false;
        }
        // init clause: var decl | expr | empty.
        if !self.skip_ws() {
            return false;
        }
        if !self.eat(b';') {
            if let Some(w @ (b"var" | b"let" | b"const")) = self.peek_word() {
                let n = w.len();
                cov!(self.cov);
                self.i += n;
                // Like var_declaration but terminated by ';' explicitly.
                loop {
                    if !self.skip_ws() {
                        return false;
                    }
                    if !self.ident() {
                        cov!(self.cov);
                        return false;
                    }
                    if !self.skip_ws() {
                        return false;
                    }
                    if self.eat(b'=') {
                        cov!(self.cov);
                        if !self.assignment_expr() {
                            return false;
                        }
                        if !self.skip_ws() {
                            return false;
                        }
                    }
                    if !self.eat(b',') {
                        break;
                    }
                }
            } else {
                cov!(self.cov);
                if !self.expr() {
                    return false;
                }
                if !self.skip_ws() {
                    return false;
                }
            }
            if !self.eat(b';') {
                cov!(self.cov);
                return false;
            }
        }
        // condition clause.
        if !self.skip_ws() {
            return false;
        }
        if !self.eat(b';') {
            cov!(self.cov);
            if !self.expr() {
                return false;
            }
            if !self.skip_ws() {
                return false;
            }
            if !self.eat(b';') {
                cov!(self.cov);
                return false;
            }
        }
        // step clause.
        if !self.skip_ws() {
            return false;
        }
        if !self.eat(b')') {
            cov!(self.cov);
            if !self.expr() {
                return false;
            }
            if !self.skip_ws() {
                return false;
            }
            if !self.eat(b')') {
                cov!(self.cov);
                return false;
            }
        }
        self.statement()
    }

    // ------------------------------------------------------------------
    // Expressions.
    // ------------------------------------------------------------------

    fn expr(&mut self) -> bool {
        cov!(self.cov);
        if !self.assignment_expr() {
            return false;
        }
        // Comma operator.
        loop {
            let save = self.i;
            if !self.skip_ws() {
                return false;
            }
            if self.eat(b',') {
                cov!(self.cov);
                if !self.assignment_expr() {
                    return false;
                }
            } else {
                self.i = save;
                return true;
            }
        }
    }

    fn assignment_expr(&mut self) -> bool {
        cov!(self.cov);
        if !self.skip_ws() {
            return false;
        }
        // Try: target assign-op expr.
        let save = self.i;
        if self.assign_target() {
            if !self.skip_ws() {
                return false;
            }
            for op in
                [&b"="[..], b"+=", b"-=", b"*=", b"/=", b"%=", b"<<=", b">>=", b"&=", b"|=", b"^="]
            {
                if self.starts_with(op)
                    && !self.starts_with(b"==")
                    && !(op == b"=" && self.starts_with(b"=>"))
                {
                    cov!(self.cov);
                    self.i += op.len();
                    return self.assignment_expr();
                }
            }
        }
        self.i = save;
        self.ternary()
    }

    fn assign_target(&mut self) -> bool {
        cov!(self.cov);
        if !self.ident() {
            return false;
        }
        loop {
            match self.peek() {
                Some(b'.') => {
                    cov!(self.cov);
                    self.i += 1;
                    if !self.ident() {
                        return false;
                    }
                }
                Some(b'[') => {
                    cov!(self.cov);
                    self.i += 1;
                    if !self.expr() {
                        return false;
                    }
                    if !self.skip_ws() {
                        return false;
                    }
                    if !self.eat(b']') {
                        return false;
                    }
                }
                _ => return true,
            }
        }
    }

    fn ternary(&mut self) -> bool {
        cov!(self.cov);
        if !self.binary(0) {
            return false;
        }
        let save = self.i;
        if !self.skip_ws() {
            return false;
        }
        if self.eat(b'?') {
            cov!(self.cov);
            if !self.assignment_expr() {
                return false;
            }
            if !self.skip_ws() {
                return false;
            }
            if !self.eat(b':') {
                cov!(self.cov);
                return false;
            }
            return self.assignment_expr();
        }
        self.i = save;
        true
    }

    fn binary(&mut self, min_level: u8) -> bool {
        cov!(self.cov);
        if !self.unary() {
            return false;
        }
        loop {
            let save = self.i;
            if !self.skip_ws() {
                return false;
            }
            const OPS: &[(&[u8], u8)] = &[
                (b"||", 1),
                (b"&&", 2),
                (b"===", 5),
                (b"!==", 5),
                (b"==", 5),
                (b"!=", 5),
                (b"<<", 7),
                (b">>>", 7),
                (b">>", 7),
                (b"<=", 6),
                (b">=", 6),
                (b"<", 6),
                (b">", 6),
                (b"|", 3),
                (b"^", 3),
                (b"&", 4),
                (b"+", 8),
                (b"-", 8),
                (b"*", 9),
                (b"/", 9),
                (b"%", 9),
            ];
            let mut found = None;
            for (op, level) in OPS {
                if self.starts_with(op) {
                    // Exclude assignment forms like += and lone = .
                    let next = self.s.get(self.i + op.len()).copied();
                    if op.len() == 1
                        && next == Some(b'=')
                        && matches!(op[0], b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|' | b'^')
                    {
                        break;
                    }
                    found = Some((op.len(), *level));
                    break;
                }
            }
            let Some((len, level)) = found else {
                self.i = save;
                cov!(self.cov);
                return true;
            };
            if level < min_level {
                self.i = save;
                return true;
            }
            self.i += len;
            if !self.binary(level + 1) {
                return false;
            }
        }
    }

    fn unary(&mut self) -> bool {
        cov!(self.cov);
        if !self.skip_ws() {
            return false;
        }
        if self.eat_word(b"typeof") || self.eat_word(b"new") {
            cov!(self.cov);
            return self.unary();
        }
        if self.starts_with(b"++") || self.starts_with(b"--") {
            cov!(self.cov);
            self.i += 2;
            return self.unary();
        }
        if self.eat(b'!') || self.eat(b'-') || self.eat(b'+') || self.eat(b'~') {
            cov!(self.cov);
            return self.unary();
        }
        self.postfix()
    }

    fn postfix(&mut self) -> bool {
        cov!(self.cov);
        if !self.primary() {
            return false;
        }
        loop {
            match self.peek() {
                Some(b'(') => {
                    cov!(self.cov);
                    self.i += 1;
                    if !self.skip_ws() {
                        return false;
                    }
                    if self.eat(b')') {
                        continue;
                    }
                    loop {
                        if !self.assignment_expr() {
                            return false;
                        }
                        if !self.skip_ws() {
                            return false;
                        }
                        if self.eat(b')') {
                            break;
                        }
                        if !self.eat(b',') {
                            cov!(self.cov);
                            return false;
                        }
                    }
                }
                Some(b'[') => {
                    cov!(self.cov);
                    self.i += 1;
                    if !self.expr() {
                        return false;
                    }
                    if !self.skip_ws() {
                        return false;
                    }
                    if !self.eat(b']') {
                        cov!(self.cov);
                        return false;
                    }
                }
                Some(b'.') => {
                    cov!(self.cov);
                    self.i += 1;
                    if !self.ident() {
                        cov!(self.cov);
                        return false;
                    }
                }
                Some(b'+') if self.starts_with(b"++") => {
                    cov!(self.cov);
                    self.i += 2;
                }
                Some(b'-') if self.starts_with(b"--") => {
                    cov!(self.cov);
                    self.i += 2;
                }
                _ => {
                    cov!(self.cov);
                    return true;
                }
            }
        }
    }

    fn primary(&mut self) -> bool {
        cov!(self.cov);
        if !self.skip_ws() {
            return false;
        }
        match self.peek() {
            Some(b'0'..=b'9') => {
                cov!(self.cov);
                self.number()
            }
            Some(b'"') => {
                cov!(self.cov);
                self.string(b'"')
            }
            Some(b'\'') => {
                cov!(self.cov);
                self.string(b'\'')
            }
            Some(b'[') => {
                cov!(self.cov);
                self.i += 1;
                if !self.skip_ws() {
                    return false;
                }
                if self.eat(b']') {
                    cov!(self.cov);
                    return true;
                }
                loop {
                    if !self.assignment_expr() {
                        return false;
                    }
                    if !self.skip_ws() {
                        return false;
                    }
                    if self.eat(b']') {
                        return true;
                    }
                    if !self.eat(b',') {
                        cov!(self.cov);
                        return false;
                    }
                }
            }
            Some(b'{') => {
                cov!(self.cov);
                self.object_literal()
            }
            Some(b'(') => {
                cov!(self.cov);
                self.i += 1;
                if !self.expr() {
                    return false;
                }
                if !self.skip_ws() {
                    return false;
                }
                self.eat(b')')
            }
            _ => match self.peek_word() {
                Some(b"function") => {
                    cov!(self.cov);
                    self.i += 8;
                    self.function_rest(false)
                }
                Some(b"true") | Some(b"false") | Some(b"null") | Some(b"undefined")
                | Some(b"this") => {
                    cov!(self.cov);
                    let w = self.peek_word().expect("peeked").len();
                    self.i += w;
                    true
                }
                _ => {
                    cov!(self.cov);
                    self.ident()
                }
            },
        }
    }

    fn number(&mut self) -> bool {
        cov!(self.cov);
        if self.starts_with(b"0x") || self.starts_with(b"0X") {
            cov!(self.cov);
            self.i += 2;
            let start = self.i;
            while self.peek().is_some_and(|b| b.is_ascii_hexdigit()) {
                self.i += 1;
            }
            return self.i > start;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.i += 1;
        }
        if self.eat(b'.') {
            cov!(self.cov);
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if self.eat(b'e') || self.eat(b'E') {
            cov!(self.cov);
            let _ = self.eat(b'-') || self.eat(b'+');
            let start = self.i;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.i += 1;
            }
            if self.i == start {
                return false;
            }
        }
        true
    }

    fn string(&mut self, quote: u8) -> bool {
        cov!(self.cov);
        debug_assert_eq!(self.peek(), Some(quote));
        self.i += 1;
        loop {
            match self.peek() {
                None | Some(b'\n') => {
                    cov!(self.cov);
                    return false;
                }
                Some(b'\\') => {
                    cov!(self.cov);
                    self.i += 2;
                }
                Some(b) if b == quote => {
                    self.i += 1;
                    return true;
                }
                Some(_) => self.i += 1,
            }
        }
    }

    fn object_literal(&mut self) -> bool {
        cov!(self.cov);
        debug_assert_eq!(self.peek(), Some(b'{'));
        self.i += 1;
        if !self.skip_ws() {
            return false;
        }
        if self.eat(b'}') {
            cov!(self.cov);
            return true;
        }
        loop {
            if !self.skip_ws() {
                return false;
            }
            // Key: identifier, string, or number.
            let key_ok = match self.peek() {
                Some(b'"') => self.string(b'"'),
                Some(b'\'') => self.string(b'\''),
                Some(b'0'..=b'9') => self.number(),
                _ => self.ident(),
            };
            if !key_ok {
                cov!(self.cov);
                return false;
            }
            if !self.skip_ws() {
                return false;
            }
            if !self.eat(b':') {
                cov!(self.cov);
                return false;
            }
            if !self.assignment_expr() {
                return false;
            }
            if !self.skip_ws() {
                return false;
            }
            if self.eat(b'}') {
                cov!(self.cov);
                return true;
            }
            if !self.eat(b',') {
                cov!(self.cov);
                return false;
            }
            if !self.skip_ws() {
                return false;
            }
            // Trailing comma.
            if self.eat(b'}') {
                cov!(self.cov);
                return true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid(s: &[u8]) -> bool {
        JavaScript.run(s).valid
    }

    #[test]
    fn seeds_are_valid() {
        for s in JavaScript.seeds() {
            assert!(valid(&s), "seed {:?}", String::from_utf8_lossy(&s));
        }
    }

    #[test]
    fn statements() {
        assert!(valid(b"var x = 1;"));
        assert!(valid(b"let y = 2, z = 3;"));
        assert!(valid(b"const k = \"s\";"));
        assert!(valid(b"x = 1\ny = 2\n")); // ASI via newline
        assert!(valid(b"{ x = 1; y = 2; }"));
        assert!(valid(b";"));
        assert!(valid(b""));
        assert!(!valid(b"var = 1;"));
        assert!(!valid(b"var x = ;"));
        assert!(!valid(b"x = 1 y = 2;")); // no separator
    }

    #[test]
    fn functions() {
        assert!(valid(b"function f() { return; }"));
        assert!(valid(b"function f(a, b) { return a + b; }"));
        assert!(valid(b"var f = function (a) { return a; };"));
        assert!(valid(b"f(1, 2);"));
        assert!(valid(b"obj.method(x)[0](y);"));
        assert!(!valid(b"function () { }")); // declaration needs a name
        assert!(!valid(b"function f( { }"));
        assert!(!valid(b"function f() return;"));
    }

    #[test]
    fn control_flow() {
        assert!(valid(b"if (x) y = 1;"));
        assert!(valid(b"if (x) { a(); } else { b(); }"));
        assert!(valid(b"if (x) a(); else if (y) b();"));
        assert!(valid(b"while (i < 10) i = i + 1;"));
        assert!(valid(b"do { i++; } while (i < 3);"));
        assert!(valid(b"for (var i = 0; i < 5; i++) f(i);"));
        assert!(valid(b"for (;;) break;"));
        assert!(!valid(b"if x { }"));
        assert!(!valid(b"while () { }"));
        assert!(!valid(b"do { } while x;"));
    }

    #[test]
    fn expressions() {
        assert!(valid(b"x = a || b && c;"));
        assert!(valid(b"y = a === b ? 1 : 2;"));
        assert!(valid(b"z = (a + b) * -c;"));
        assert!(valid(b"w = typeof x;"));
        assert!(valid(b"v = new Thing(1);"));
        assert!(valid(b"u = a << 2 | b & 7;"));
        assert!(valid(b"t = ++i + j--;"));
        assert!(valid(b"s = [1, 'two', x];"));
        assert!(valid(b"r = {a: 1, 'b': 2, 3: x};"));
        assert!(valid(b"q = 0xFF + 1.5e3;"));
        assert!(!valid(b"x = ;"));
        assert!(!valid(b"y = a ? 1;"));
        assert!(!valid(b"z = [1, ;"));
        assert!(!valid(b"w = {a 1};"));
        assert!(!valid(b"v = 'open\n';"));
    }

    #[test]
    fn comments() {
        assert!(valid(b"// line\nx = 1;"));
        assert!(valid(b"/* block */ x = 1;"));
        assert!(!valid(b"/* unterminated\nx = 1;"));
    }

    #[test]
    fn coverage_accounting() {
        let c = JavaScript
            .run(b"function f(a) { if (a > 0) { return {k: [1, 'x']}; } return null; }")
            .coverage;
        assert!(c.len() > 25);
        assert!(JavaScript.coverable_lines() >= c.len());
    }
}
