//! Evaluation subjects for the GLADE reproduction.
//!
//! The paper evaluates GLADE on two kinds of subjects:
//!
//! * **Handwritten target-language grammars** (Section 8.2): URL, Grep,
//!   Lisp, and XML — see [`languages`]. Seed inputs are sampled from the
//!   grammar and the membership oracle is grammar membership.
//! * **Real programs** (Section 8.3): sed, flex, grep, bison, an XML
//!   parser, and the Ruby/Python/JavaScript front-ends — reproduced here as
//!   instrumented Rust parsers (see [`programs`]) that accept the same
//!   input languages and report gcov-style line coverage (see [`mod@cov`]).
//!
//! A [`Target`] bundles a program with its seeds and coverage accounting;
//! [`TargetOracle`] adapts any target into a [`glade_core::Oracle`] so the
//! synthesizer can learn its input grammar blackbox-style.
//!
//! ```
//! use glade_targets::{programs::Grep, Target, TargetOracle};
//! use glade_core::Oracle;
//!
//! let grep = Grep;
//! let oracle = TargetOracle::new(&grep);
//! assert!(oracle.accepts(b"^ab*c$"));
//! assert!(!oracle.accepts(b"\\(unclosed"));
//! ```

#![warn(missing_docs)]

pub mod corpora;
pub mod cov;
pub mod languages;
pub mod programs;
mod target;

pub use cov::{count_points, Coverage, RunOutcome};
pub use languages::{GrammarOracle, Language};
pub use target::{Target, TargetOracle};
