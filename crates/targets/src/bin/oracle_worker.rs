//! `glade-oracle-worker` — a pooled-oracle worker harness for the built-in
//! evaluation subjects.
//!
//! Wraps any built-in instrumented target (`glade targets`) or handwritten
//! Section 8.2 language in the length-prefixed stdin/stdout verdict
//! protocol of `glade_core::PooledProcessOracle` (see the protocol spec in
//! `glade_core::oracle`), so real-process oracle throughput can be
//! exercised — and benchmarked — without writing a bespoke worker per
//! target:
//!
//! ```text
//! glade-oracle-worker <NAME>            # serve the protocol until EOF
//! glade-oracle-worker <NAME> --once     # read all of stdin, exit 0/1
//! glade-oracle-worker --list            # names this worker can serve
//! ```
//!
//! `--once` makes the same subject drivable by a spawn-per-query
//! `ProcessOracle` (validity = exit status), which is exactly what the
//! pooled oracle's fallback path and the pooled-vs-spawn benchmark need.
//!
//! `NAME` resolves an instrumented target first (`xml`, `grep`, `sed`, …)
//! and then a handwritten language (`url-lang`, `lisp-lang`, `toy-xml`, …
//! — suffixed to avoid clashing with the same-named targets).

use glade_core::{serve_oracle_worker, Oracle};
use glade_targets::languages::{section82_languages, toy_xml};
use glade_targets::programs::{all_targets, target_by_name};
use glade_targets::TargetOracle;
use std::io::Read as _;
use std::process::ExitCode;

/// Resolves `name` to a boxed oracle. Languages are suffixed `-lang`
/// (except `toy-xml`, which has no target twin).
fn oracle_by_name(name: &str) -> Option<Box<dyn Oracle>> {
    if let Some(target) = target_by_name(name) {
        // Leak is fine for a one-shot worker process.
        let target: &'static dyn glade_targets::Target = Box::leak(target);
        return Some(Box::new(TargetOracle::new(target)));
    }
    let mut languages = section82_languages();
    languages.push(toy_xml());
    for language in languages {
        let lang_name = if language.name() == "toy-xml" {
            language.name().to_owned()
        } else {
            format!("{}-lang", language.name())
        };
        if lang_name == name {
            return Some(Box::new(language.oracle()));
        }
    }
    None
}

fn known_names() -> Vec<String> {
    let mut names: Vec<String> = all_targets().iter().map(|t| t.name().to_owned()).collect();
    names.extend(section82_languages().iter().map(|l| format!("{}-lang", l.name())));
    names.push("toy-xml".to_owned());
    names
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--list") {
        for name in known_names() {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }
    let (name, once) = match args.as_slice() {
        [name] => (name.as_str(), false),
        [name, flag] if flag == "--once" => (name.as_str(), true),
        _ => {
            eprintln!("usage: glade-oracle-worker <NAME> [--once] | --list");
            return ExitCode::FAILURE;
        }
    };
    let Some(oracle) = oracle_by_name(name) else {
        eprintln!("glade-oracle-worker: unknown subject `{name}` (try --list)");
        return ExitCode::FAILURE;
    };
    if once {
        // Spawn-per-query mode: one verdict from the exit status.
        let mut input = Vec::new();
        if std::io::stdin().read_to_end(&mut input).is_err() {
            return ExitCode::FAILURE;
        }
        return if oracle.accepts(&input) { ExitCode::SUCCESS } else { ExitCode::from(1) };
    }
    match serve_oracle_worker(|input| oracle.accepts(input)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("glade-oracle-worker: protocol error: {e}");
            ExitCode::FAILURE
        }
    }
}
