//! `glade-oracle-worker` — a pooled-oracle worker harness for the built-in
//! evaluation subjects.
//!
//! Wraps any built-in instrumented target (`glade targets`) or handwritten
//! Section 8.2 language in the length-prefixed stdin/stdout verdict
//! protocol of `glade_core::PooledProcessOracle` (see the protocol spec in
//! `glade_core::oracle`), so real-process oracle throughput can be
//! exercised — and benchmarked — without writing a bespoke worker per
//! target:
//!
//! ```text
//! glade-oracle-worker <NAME>                 # serve the protocol until EOF
//! glade-oracle-worker <NAME> --once          # read all of stdin, exit 0/1
//! glade-oracle-worker <NAME> --wire-v1       # pin legacy single-query frames
//! glade-oracle-worker <NAME> --crash-after N # die after N answers (tests)
//! glade-oracle-worker --list                 # names this worker can serve
//! ```
//!
//! `--once` makes the same subject drivable by a spawn-per-query
//! `ProcessOracle` (validity = exit status), which is exactly what the
//! pooled oracle's fallback path and the pooled-vs-spawn benchmark need.
//! The protocol mode negotiates v2 batched frames automatically;
//! `--wire-v1` pins the legacy single-query wire format (the worker never
//! acknowledges the upgrade probe), which the protocol compatibility
//! matrix drives. `--crash-after N` makes the worker exit abruptly after
//! answering N queries — the crash-recovery test battery uses it to kill
//! workers mid-batch under load.
//!
//! `NAME` resolves an instrumented target first (`xml`, `grep`, `sed`, …)
//! and then a handwritten language (`url-lang`, `lisp-lang`, `toy-xml`, …
//! — suffixed to avoid clashing with the same-named targets).

use glade_core::{serve_oracle_worker, serve_oracle_worker_v1, Oracle};
use glade_targets::languages::{section82_languages, toy_xml};
use glade_targets::programs::{all_targets, target_by_name};
use glade_targets::TargetOracle;
use std::io::Read as _;
use std::process::ExitCode;

/// Resolves `name` to a boxed oracle. Languages are suffixed `-lang`
/// (except `toy-xml`, which has no target twin).
fn oracle_by_name(name: &str) -> Option<Box<dyn Oracle>> {
    if let Some(target) = target_by_name(name) {
        // Leak is fine for a one-shot worker process.
        let target: &'static dyn glade_targets::Target = Box::leak(target);
        return Some(Box::new(TargetOracle::new(target)));
    }
    let mut languages = section82_languages();
    languages.push(toy_xml());
    for language in languages {
        let lang_name = if language.name() == "toy-xml" {
            language.name().to_owned()
        } else {
            format!("{}-lang", language.name())
        };
        if lang_name == name {
            return Some(Box::new(language.oracle()));
        }
    }
    None
}

fn known_names() -> Vec<String> {
    let mut names: Vec<String> = all_targets().iter().map(|t| t.name().to_owned()).collect();
    names.extend(section82_languages().iter().map(|l| format!("{}-lang", l.name())));
    names.push("toy-xml".to_owned());
    names
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--list") {
        for name in known_names() {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }
    let Some((name, rest)) = args.split_first() else {
        eprintln!(
            "usage: glade-oracle-worker <NAME> [--once|--wire-v1] [--crash-after N] | --list"
        );
        return ExitCode::FAILURE;
    };
    let mut once = false;
    let mut wire_v1 = false;
    let mut crash_after: Option<usize> = None;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--once" => once = true,
            "--wire-v1" => wire_v1 = true,
            "--crash-after" => {
                i += 1;
                match rest.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => crash_after = Some(n),
                    None => {
                        eprintln!("glade-oracle-worker: --crash-after needs a count");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other => {
                eprintln!("glade-oracle-worker: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let Some(oracle) = oracle_by_name(name) else {
        eprintln!("glade-oracle-worker: unknown subject `{name}` (try --list)");
        return ExitCode::FAILURE;
    };
    if once {
        // Spawn-per-query mode: one verdict from the exit status.
        let mut input = Vec::new();
        if std::io::stdin().read_to_end(&mut input).is_err() {
            return ExitCode::FAILURE;
        }
        return if oracle.accepts(&input) { ExitCode::SUCCESS } else { ExitCode::from(1) };
    }
    // `--crash-after N`: answer N queries, then die without warning — the
    // crash-recovery tests kill workers mid-batch this way. A v2 batch in
    // progress is torn exactly where the target stopped answering.
    let mut answered = 0usize;
    let predicate = move |input: &[u8]| {
        if crash_after.is_some_and(|n| answered >= n) {
            std::process::exit(42);
        }
        answered += 1;
        oracle.accepts(input)
    };
    let served =
        if wire_v1 { serve_oracle_worker_v1(predicate) } else { serve_oracle_worker(predicate) };
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("glade-oracle-worker: protocol error: {e}");
            ExitCode::FAILURE
        }
    }
}
