//! `glade-oracle-worker` — a pooled-oracle worker harness for the built-in
//! evaluation subjects.
//!
//! Wraps any built-in instrumented target (`glade targets`) or handwritten
//! Section 8.2 language in the length-prefixed stdin/stdout verdict
//! protocol of `glade_core::PooledProcessOracle` (see the protocol spec in
//! `glade_core::oracle`), so real-process oracle throughput can be
//! exercised — and benchmarked — without writing a bespoke worker per
//! target:
//!
//! ```text
//! glade-oracle-worker <NAME>                 # serve the protocol until EOF
//! glade-oracle-worker <NAME> --once          # read all of stdin, exit 0/1
//! glade-oracle-worker <NAME> --wire-v1       # pin legacy single-query frames
//! glade-oracle-worker <NAME> --crash-after N # die after N answers (tests)
//! glade-oracle-worker <NAME> --hang-after N  # answer N, then hang forever
//! glade-oracle-worker <NAME> --stall-ms M    # slow-loris: M ms per verdict
//! glade-oracle-worker <NAME> --garbage-after N # emit 0x7f verdicts past N
//! glade-oracle-worker <NAME> --flaky-spawn P # alternate spawns die (file P)
//! glade-oracle-worker --list                 # names this worker can serve
//! ```
//!
//! `--once` makes the same subject drivable by a spawn-per-query
//! `ProcessOracle` (validity = exit status), which is exactly what the
//! pooled oracle's fallback path and the pooled-vs-spawn benchmark need.
//! The protocol mode negotiates v2 batched frames automatically;
//! `--wire-v1` pins the legacy single-query wire format (the worker never
//! acknowledges the upgrade probe), which the protocol compatibility
//! matrix drives.
//!
//! The fault flags feed a deterministic `glade_core::FaultPlan` and route
//! serving through `glade_core::serve_faulty_worker`: `--crash-after N`
//! exits abruptly after answering N queries (the crash-recovery battery
//! kills workers mid-batch this way), `--hang-after N` answers N queries
//! and then goes silent without exiting (the query-deadline battery's
//! hung-worker mode — mid-v2-frame when query N+1 arrives inside a
//! batch), `--stall-ms M` trickles verdicts one byte every M milliseconds
//! (slow-loris — slow but healthy, which a per-verdict deadline must
//! tolerate), `--garbage-after N` deviates from the protocol without
//! dying, and `--flaky-spawn PATH` makes alternate spawns of this command
//! die instantly (the respawn-backoff/breaker battery's spawn-streak
//! mode; PATH is the cross-process spawn counter). With none of these
//! flags the serve path is byte-identical to the clean worker.
//!
//! `NAME` resolves an instrumented target first (`xml`, `grep`, `sed`, …)
//! and then a handwritten language (`url-lang`, `lisp-lang`, `toy-xml`, …
//! — suffixed to avoid clashing with the same-named targets).

use glade_core::{
    flaky_spawn_should_die, serve_faulty_worker, serve_faulty_worker_v1, FaultPlan, Oracle,
};
use glade_targets::languages::{section82_languages, toy_xml};
use glade_targets::programs::{all_targets, target_by_name};
use glade_targets::TargetOracle;
use std::io::Read as _;
use std::process::ExitCode;

/// Resolves `name` to a boxed oracle. Languages are suffixed `-lang`
/// (except `toy-xml`, which has no target twin).
fn oracle_by_name(name: &str) -> Option<Box<dyn Oracle>> {
    if let Some(target) = target_by_name(name) {
        // Leak is fine for a one-shot worker process.
        let target: &'static dyn glade_targets::Target = Box::leak(target);
        return Some(Box::new(TargetOracle::new(target)));
    }
    let mut languages = section82_languages();
    languages.push(toy_xml());
    for language in languages {
        let lang_name = if language.name() == "toy-xml" {
            language.name().to_owned()
        } else {
            format!("{}-lang", language.name())
        };
        if lang_name == name {
            return Some(Box::new(language.oracle()));
        }
    }
    None
}

fn known_names() -> Vec<String> {
    let mut names: Vec<String> = all_targets().iter().map(|t| t.name().to_owned()).collect();
    names.extend(section82_languages().iter().map(|l| format!("{}-lang", l.name())));
    names.push("toy-xml".to_owned());
    names
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--list") {
        for name in known_names() {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }
    let Some((name, rest)) = args.split_first() else {
        eprintln!(
            "usage: glade-oracle-worker <NAME> [--once|--wire-v1] [--crash-after N] \
             [--hang-after N] [--stall-ms M] [--garbage-after N] [--flaky-spawn PATH] | --list"
        );
        return ExitCode::FAILURE;
    };
    let mut once = false;
    let mut wire_v1 = false;
    let mut plan = FaultPlan::new();
    let mut flaky_spawn: Option<std::path::PathBuf> = None;
    let mut i = 0;
    // The counted fault flags share one parsing shape: `--flag N`.
    let counted = |rest: &[String], i: &mut usize, flag: &str| -> Option<usize> {
        *i += 1;
        let n = rest.get(*i).and_then(|v| v.parse().ok());
        if n.is_none() {
            eprintln!("glade-oracle-worker: {flag} needs a count");
        }
        n
    };
    while i < rest.len() {
        match rest[i].as_str() {
            "--once" => once = true,
            "--wire-v1" => wire_v1 = true,
            "--crash-after" => match counted(rest, &mut i, "--crash-after") {
                Some(n) => plan = plan.crash_after(n),
                None => return ExitCode::FAILURE,
            },
            "--hang-after" => match counted(rest, &mut i, "--hang-after") {
                Some(n) => plan = plan.hang_after(n),
                None => return ExitCode::FAILURE,
            },
            "--stall-ms" => match counted(rest, &mut i, "--stall-ms") {
                Some(ms) => plan = plan.stall_ms(ms as u64),
                None => return ExitCode::FAILURE,
            },
            "--garbage-after" => match counted(rest, &mut i, "--garbage-after") {
                Some(n) => plan = plan.garbage_after(n),
                None => return ExitCode::FAILURE,
            },
            "--flaky-spawn" => {
                i += 1;
                match rest.get(i) {
                    Some(p) => flaky_spawn = Some(std::path::PathBuf::from(p)),
                    None => {
                        eprintln!("glade-oracle-worker: --flaky-spawn needs a counter path");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other => {
                eprintln!("glade-oracle-worker: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    if let Some(path) = &flaky_spawn {
        // The spawn-streak fault: alternate spawns of this command die
        // before speaking a byte of protocol, which the pool observes as
        // a spawn-or-crash failure streak.
        if flaky_spawn_should_die(path) {
            return ExitCode::from(43);
        }
    }
    let Some(oracle) = oracle_by_name(name) else {
        eprintln!("glade-oracle-worker: unknown subject `{name}` (try --list)");
        return ExitCode::FAILURE;
    };
    if once {
        // Spawn-per-query mode: one verdict from the exit status.
        let mut input = Vec::new();
        if std::io::stdin().read_to_end(&mut input).is_err() {
            return ExitCode::FAILURE;
        }
        return if oracle.accepts(&input) { ExitCode::SUCCESS } else { ExitCode::from(1) };
    }
    // A no-op plan serves the clean loops byte-identically; any fault flag
    // routes through the deterministic fault harness (see
    // `glade_core::FaultPlan`).
    let predicate = move |input: &[u8]| oracle.accepts(input);
    let served = if wire_v1 {
        serve_faulty_worker_v1(&plan, predicate)
    } else {
        serve_faulty_worker(&plan, predicate)
    };
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("glade-oracle-worker: protocol error: {e}");
            ExitCode::FAILURE
        }
    }
}
