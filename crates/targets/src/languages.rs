//! The four handwritten target-language grammars of Section 8.2 (URL, Grep,
//! Lisp, XML), plus the paper's XML-like running example (Figure 1).
//!
//! In the language-inference experiment the target language `L*` is defined
//! by a handwritten grammar; seed inputs are sampled from it (Section 8.1)
//! and the membership oracle is grammar membership. The grammars below
//! mirror the paper's four subjects: a URL regular expression, GNU grep's
//! basic-regular-expression input syntax, a small Lisp with strings, and an
//! XML fragment with attributes/comments/CDATA over a fixed tag set (fixed
//! so the language stays context-free).

use glade_core::Oracle;
use glade_grammar::cfg::{cls, lit, nt, GrammarBuilder};
use glade_grammar::{CharClass, Earley, Grammar};

/// A named target language backed by a handwritten grammar.
#[derive(Debug, Clone)]
pub struct Language {
    name: &'static str,
    grammar: Grammar,
}

impl Language {
    /// Short name ("url", "grep", "lisp", "xml", "toy-xml").
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The defining grammar.
    pub fn grammar(&self) -> &Grammar {
        &self.grammar
    }

    /// A membership oracle for the language (Earley recognition).
    pub fn oracle(&self) -> GrammarOracle {
        GrammarOracle { grammar: self.grammar.clone() }
    }
}

/// Membership oracle backed by a [`Grammar`].
#[derive(Debug, Clone)]
pub struct GrammarOracle {
    grammar: Grammar,
}

impl GrammarOracle {
    /// Creates an oracle for `grammar`.
    pub fn new(grammar: Grammar) -> Self {
        GrammarOracle { grammar }
    }

    /// The underlying grammar.
    pub fn grammar(&self) -> &Grammar {
        &self.grammar
    }
}

impl Oracle for GrammarOracle {
    fn accepts(&self, input: &[u8]) -> bool {
        Earley::new(&self.grammar).accepts(input)
    }
}

fn lower() -> CharClass {
    CharClass::range(b'a', b'z')
}

fn digit() -> CharClass {
    CharClass::range(b'0', b'9')
}

/// The URL language, matching the paper's Figure 5 target semantics:
/// `http(+s)://(+www.)[...]*.[...]*` extended with paths and query pairs.
/// As in the paper's simplified target, the host parts are Kleene-starred
/// (possibly empty) around the mandatory dot.
pub fn url() -> Language {
    let mut b = GrammarBuilder::new();
    let a = b.nt("Url");
    let scheme = b.nt("Scheme");
    let host = b.nt("Host");
    let part = b.nt("HostPart");
    let part_more = b.nt("HostPartMore");
    let path = b.nt("Path");
    let seg = b.nt("Segment");
    let segchars = b.nt("SegChars");
    let query = b.nt("Query");
    let pairs = b.nt("Pairs");
    let pair = b.nt("Pair");
    let word = b.nt("Word");

    b.prod(scheme, lit(b"http"));
    b.prod(scheme, lit(b"https"));
    b.prod(scheme, lit(b"ftp"));

    // Url → scheme "://" ("www.")? host path query?
    b.prod(a, [nt(scheme), lit(b"://"), nt(host), nt(path), nt(query)].concat());
    b.prod(a, [nt(scheme), lit(b"://www."), nt(host), nt(path), nt(query)].concat());

    // host → [...]* "." [...]* ("." [...]*)*   (Figure 5: parts may be ε)
    b.prod(host, [nt(part), lit(b"."), nt(part), nt(part_more)].concat());
    b.prod(part_more, vec![]);
    b.prod(part_more, [lit(b"."), nt(part), nt(part_more)].concat());

    let hostchar = lower().union(&digit()).union(&CharClass::single(b'-'));
    b.prod(part, vec![]);
    b.prod(part, [cls(hostchar), nt(part)].concat());

    // path → ("/" segment)*
    b.prod(path, vec![]);
    b.prod(path, [lit(b"/"), nt(seg), nt(path)].concat());
    b.prod(seg, vec![]);
    b.prod(seg, [nt(segchars)].concat());
    b.prod(segchars, cls(lower().union(&digit()).union(&CharClass::from_bytes(b"._-"))));
    b.prod(
        segchars,
        [cls(lower().union(&digit()).union(&CharClass::from_bytes(b"._-"))), nt(segchars)].concat(),
    );

    // query → ("?" pair ("&" pair)*)?  with possibly-empty words, in the
    // same starred spirit as the Figure 5 target.
    b.prod(query, vec![]);
    b.prod(query, [lit(b"?"), nt(pair), nt(pairs)].concat());
    b.prod(pairs, vec![]);
    b.prod(pairs, [lit(b"&"), nt(pair), nt(pairs)].concat());
    b.prod(pair, [nt(word), lit(b"="), nt(word)].concat());
    b.prod(word, vec![]);
    b.prod(word, [cls(lower().union(&digit())), nt(word)].concat());

    Language { name: "url", grammar: b.build(a).expect("url grammar is valid") }
}

/// The Grep language: GNU grep's basic-regular-expression pattern syntax
/// (literals, `.`, classes, `\( \)` groups, `\|` alternation, `*`,
/// `\{m,n\}` bounds, anchors).
pub fn grep() -> Language {
    let mut b = GrammarBuilder::new();
    let pattern = b.nt("Pattern");
    let branch = b.nt("Branch");
    let piece = b.nt("Piece");
    let atom = b.nt("Atom");
    let class = b.nt("Class");
    let items = b.nt("ClassItems");
    let item = b.nt("ClassItem");
    let digits = b.nt("Digits");

    let ordinary = CharClass::from_bytes(b"abcdefghijklmnopqrstuvwxyz0123456789 ,;:=@_-");
    let classch = CharClass::from_bytes(b"abcdefghijklmnopqrstuvwxyz0123456789");

    // pattern → branch (\| branch)*
    b.prod(pattern, nt(branch));
    b.prod(pattern, [nt(branch), lit(b"\\|"), nt(pattern)].concat());
    // branch → piece*  (allow empty)
    b.prod(branch, vec![]);
    b.prod(branch, [nt(piece), nt(branch)].concat());
    // piece → atom ('*' | \{m,n\})?
    b.prod(piece, nt(atom));
    b.prod(piece, [nt(atom), lit(b"*")].concat());
    b.prod(piece, [nt(atom), lit(b"\\{"), nt(digits), lit(b"\\}")].concat());
    b.prod(piece, [nt(atom), lit(b"\\{"), nt(digits), lit(b","), nt(digits), lit(b"\\}")].concat());
    // atom
    b.prod(atom, cls(ordinary));
    b.prod(atom, lit(b"."));
    b.prod(atom, lit(b"^"));
    b.prod(atom, lit(b"$"));
    b.prod(atom, [lit(b"\\("), nt(pattern), lit(b"\\)")].concat());
    b.prod(atom, nt(class));
    b.prod(atom, [lit(b"\\"), cls(CharClass::from_bytes(b".*[]\\^$"))].concat());
    // class → '[' '^'? item+ ']'
    b.prod(class, [lit(b"["), nt(item), nt(items)].concat());
    b.prod(class, [lit(b"[^"), nt(item), nt(items)].concat());
    b.prod(items, lit(b"]"));
    b.prod(items, [nt(item), nt(items)].concat());
    b.prod(item, cls(classch));
    b.prod(item, [cls(classch), lit(b"-"), cls(classch)].concat());
    // digits: 1-2 digits keeps bounds small.
    b.prod(digits, cls(digit()));
    b.prod(digits, [cls(digit()), cls(digit())].concat());

    Language { name: "grep", grammar: b.build(pattern).expect("grep grammar is valid") }
}

/// The Lisp language: s-expressions with atoms, quoted forms, strings, and
/// space-separated lists (after Norvig's `lispy`).
pub fn lisp() -> Language {
    let mut b = GrammarBuilder::new();
    let sexp = b.nt("SExp");
    let list = b.nt("List");
    let inner = b.nt("ListInner");
    let more = b.nt("ListMore");
    let atom = b.nt("Atom");
    let atomch = b.nt("AtomChars");
    let string = b.nt("String");
    let strch = b.nt("StringChars");
    let ws = b.nt("Ws");

    let symch = CharClass::from_bytes(b"abcdefghijklmnopqrstuvwxyz0123456789+-*/<>=!?_");
    let strbody = CharClass::printable_ascii()
        .intersect(&CharClass::single(b'"').complement())
        .intersect(&CharClass::single(b'\\').complement());

    b.prod(sexp, nt(atom));
    b.prod(sexp, nt(string));
    b.prod(sexp, nt(list));
    b.prod(sexp, [lit(b"'"), nt(sexp)].concat());

    b.prod(list, [lit(b"("), nt(inner), lit(b")")].concat());
    b.prod(inner, vec![]);
    b.prod(inner, [nt(sexp), nt(more)].concat());
    b.prod(more, vec![]);
    b.prod(more, [nt(ws), nt(sexp), nt(more)].concat());

    b.prod(ws, lit(b" "));
    b.prod(ws, [lit(b" "), nt(ws)].concat());

    b.prod(atom, [cls(symch), nt(atomch)].concat());
    b.prod(atomch, vec![]);
    b.prod(atomch, [cls(symch), nt(atomch)].concat());

    b.prod(string, [lit(b"\""), nt(strch), lit(b"\"")].concat());
    b.prod(strch, vec![]);
    b.prod(strch, [cls(strbody), nt(strch)].concat());

    Language { name: "lisp", grammar: b.build(sexp).expect("lisp grammar is valid") }
}

/// The XML language: elements over the fixed tag set `{a, b}` (fixed tags
/// keep the language context-free, as in the paper), with attributes,
/// self-closing tags, text, comments, and CDATA sections.
pub fn xml() -> Language {
    let mut b = GrammarBuilder::new();
    let doc = b.nt("Doc");
    let elem = b.nt("Elem");
    let attrs = b.nt("Attrs");
    let attr = b.nt("Attr");
    let name = b.nt("Name");
    let value = b.nt("Value");
    let content = b.nt("Content");
    let text = b.nt("TextChar");
    let comment = b.nt("Comment");
    let ctext = b.nt("CommentText");
    let cdata = b.nt("CData");
    let dtext = b.nt("CDataText");

    let textch = CharClass::from_bytes(b"abcdefghijklmnopqrstuvwxyz0123456789 .,;:!?_-");
    let namech = lower();
    let valch = CharClass::from_bytes(b"abcdefghijklmnopqrstuvwxyz0123456789 _-");

    b.prod(doc, nt(elem));

    for tag in [&b"a"[..], b"b"] {
        // <tag attrs>content</tag>
        b.prod(
            elem,
            [
                lit(b"<"),
                lit(tag),
                nt(attrs),
                lit(b">"),
                nt(content),
                lit(b"</"),
                lit(tag),
                lit(b">"),
            ]
            .concat(),
        );
        // <tag attrs/>
        b.prod(elem, [lit(b"<"), lit(tag), nt(attrs), lit(b"/>")].concat());
    }

    b.prod(attrs, vec![]);
    b.prod(attrs, [lit(b" "), nt(attr), nt(attrs)].concat());
    b.prod(attr, [nt(name), lit(b"=\""), nt(value), lit(b"\"")].concat());
    b.prod(name, cls(namech));
    b.prod(name, [cls(namech), nt(name)].concat());
    b.prod(value, vec![]);
    b.prod(value, [cls(valch), nt(value)].concat());

    b.prod(content, vec![]);
    b.prod(content, [nt(elem), nt(content)].concat());
    b.prod(content, [nt(text), nt(content)].concat());
    b.prod(content, [nt(comment), nt(content)].concat());
    b.prod(content, [nt(cdata), nt(content)].concat());
    b.prod(text, cls(textch));

    b.prod(comment, [lit(b"<!--"), nt(ctext), lit(b"-->")].concat());
    b.prod(ctext, vec![]);
    b.prod(ctext, [cls(textch), nt(ctext)].concat());

    b.prod(cdata, [lit(b"<![CDATA["), nt(dtext), lit(b"]]>")].concat());
    b.prod(dtext, vec![]);
    b.prod(dtext, [cls(textch.union(&CharClass::from_bytes(b"<>&"))), nt(dtext)].concat());

    Language { name: "xml", grammar: b.build(doc).expect("xml grammar is valid") }
}

/// The paper's running-example language `C_XML` (Figure 1):
/// `A → (a..z | <a>A</a>)*`.
pub fn toy_xml() -> Language {
    let mut b = GrammarBuilder::new();
    let a = b.nt("A");
    let item = b.nt("Item");
    b.prod(a, vec![]);
    b.prod(a, [nt(a), nt(item)].concat());
    b.prod(item, cls(lower()));
    b.prod(item, [lit(b"<a>"), nt(a), lit(b"</a>")].concat());
    Language { name: "toy-xml", grammar: b.build(a).expect("toy grammar is valid") }
}

/// The four Section 8.2 target languages, in the paper's order.
pub fn section82_languages() -> Vec<Language> {
    vec![url(), grep(), lisp(), xml()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use glade_grammar::Sampler;
    use rand::SeedableRng;

    fn accepts(l: &Language, s: &[u8]) -> bool {
        l.oracle().accepts(s)
    }

    #[test]
    fn url_membership() {
        let l = url();
        assert!(accepts(&l, b"http://foo.com"));
        assert!(accepts(&l, b"https://www.a-b.example.org/path/to?x=1&y=2"));
        assert!(accepts(&l, b"ftp://files.net/"));
        // Figure 5 semantics: starred host parts may be empty.
        assert!(accepts(&l, b"http://."));
        assert!(accepts(&l, b"http://a.b?=x"));
        assert!(!accepts(&l, b"http://"));
        assert!(!accepts(&l, b"foo.com"));
        assert!(!accepts(&l, b"http://nodot"));
        assert!(!accepts(&l, b"http:/a.b"));
    }

    #[test]
    fn grep_membership() {
        let l = grep();
        assert!(accepts(&l, b"abc"));
        assert!(accepts(&l, b"a*b"));
        assert!(accepts(&l, b"^x$"));
        assert!(accepts(&l, b"\\(ab\\|cd\\)*"));
        assert!(accepts(&l, b"[a-z0-9]*x"));
        assert!(accepts(&l, b"a\\{2,3\\}"));
        assert!(accepts(&l, b"\\."));
        assert!(!accepts(&l, b"\\(ab"));
        assert!(!accepts(&l, b"[abc"));
        assert!(!accepts(&l, b"a\\{,3\\}"));
    }

    #[test]
    fn lisp_membership() {
        let l = lisp();
        assert!(accepts(&l, b"atom"));
        assert!(accepts(&l, b"()"));
        assert!(accepts(&l, b"(+ 1 2)"));
        assert!(accepts(&l, b"(define (sq x) (* x x))"));
        assert!(accepts(&l, b"'(quoted list)"));
        assert!(accepts(&l, b"\"a string\""));
        assert!(!accepts(&l, b"(unclosed"));
        assert!(!accepts(&l, b")("));
        assert!(!accepts(&l, b"( leading space)")); // space before first element
    }

    #[test]
    fn xml_membership() {
        let l = xml();
        assert!(accepts(&l, b"<a></a>"));
        assert!(accepts(&l, b"<a x=\"1\"><b>text</b></a>"));
        assert!(accepts(&l, b"<b/>"));
        assert!(accepts(&l, b"<a><!--note--><![CDATA[<&>]]></a>"));
        assert!(!accepts(&l, b"<a></b>"));
        assert!(!accepts(&l, b"<c></c>")); // only tags a and b exist
        assert!(!accepts(&l, b"<a>"));
    }

    #[test]
    fn toy_xml_matches_running_example() {
        let l = toy_xml();
        assert!(accepts(&l, b""));
        assert!(accepts(&l, b"<a>hi</a>"));
        assert!(accepts(&l, b"hi<a><a>x</a></a>"));
        assert!(!accepts(&l, b"<a>"));
        assert!(!accepts(&l, b"HI"));
    }

    #[test]
    fn all_grammars_are_productive_and_sampleable() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        for l in section82_languages().iter().chain([toy_xml()].iter()) {
            assert!(l.grammar().is_productive(), "{} not productive", l.name());
            let sampler = Sampler::new(l.grammar());
            for _ in 0..50 {
                let s = sampler.sample(&mut rng).expect("productive");
                assert!(
                    accepts(l, &s),
                    "{}: sample {:?} rejected by own grammar",
                    l.name(),
                    String::from_utf8_lossy(&s)
                );
            }
        }
    }
}
