//! Line-coverage instrumentation for the target programs.
//!
//! The paper measures fuzzer quality by gcov line coverage of the real
//! programs (Section 8.3). Our stand-in parsers reproduce that measurement:
//! every instrumentation point records its own source line (via the `cov!`
//! macro, which expands to `line!()`), and the denominator — the number of
//! coverable lines — is counted statically from the target's own source
//! text, exactly like gcov's per-line accounting.

use std::collections::HashSet;

/// The set of instrumented source lines executed by one or more runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Coverage {
    lines: HashSet<u32>,
}

impl Coverage {
    /// Creates an empty coverage set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a hit at source line `line`.
    pub fn hit(&mut self, line: u32) {
        self.lines.insert(line);
    }

    /// Number of distinct lines covered.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether nothing has been covered.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Whether `line` was covered.
    pub fn contains(&self, line: u32) -> bool {
        self.lines.contains(&line)
    }

    /// Merges `other` into `self`.
    pub fn merge(&mut self, other: &Coverage) {
        self.lines.extend(other.lines.iter().copied());
    }

    /// Lines in `self` that are not in `other` (the "incremental" part of
    /// the paper's valid incremental coverage).
    pub fn difference(&self, other: &Coverage) -> Coverage {
        Coverage { lines: self.lines.difference(&other.lines).copied().collect() }
    }

    /// Whether `other` covers a line that `self` does not (the afl-style
    /// "new coverage" trigger).
    pub fn would_grow(&self, other: &Coverage) -> bool {
        other.lines.iter().any(|l| !self.lines.contains(l))
    }

    /// Iterates over covered lines in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.lines.iter().copied()
    }
}

impl FromIterator<u32> for Coverage {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        Coverage { lines: iter.into_iter().collect() }
    }
}

/// Records a coverage hit at the current source line.
///
/// Usage inside a parser: `cov!(self.cov);`. The target's coverable-line
/// denominator is derived by counting textual occurrences of this macro in
/// the target's source file (see [`count_points`]).
#[macro_export]
macro_rules! cov {
    ($cov:expr) => {
        $cov.hit(line!())
    };
}

/// Counts the instrumentation points in a source file (the coverable-line
/// denominator). `src` is the file's text, captured with `include_str!`.
pub fn count_points(src: &str) -> usize {
    // Exclude the macro definition/doc mentions by requiring the call form
    // at a use site: "cov!(".
    src.matches("cov!(").count()
}

/// The outcome of running a target program on one input.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Whether the input was accepted (parsed without error) — the paper's
    /// membership-oracle answer.
    pub valid: bool,
    /// Instrumented lines executed during the run.
    pub coverage: Coverage,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_accumulate_distinctly() {
        let mut c = Coverage::new();
        assert!(c.is_empty());
        c.hit(10);
        c.hit(10);
        c.hit(20);
        assert_eq!(c.len(), 2);
        assert!(c.contains(10));
        assert!(!c.contains(11));
    }

    #[test]
    fn merge_and_difference() {
        let a: Coverage = [1u32, 2, 3].into_iter().collect();
        let b: Coverage = [3u32, 4].into_iter().collect();
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.len(), 4);
        let d = b.difference(&a);
        assert_eq!(d.len(), 1);
        assert!(d.contains(4));
    }

    #[test]
    fn would_grow_detects_new_lines() {
        let a: Coverage = [1u32, 2].into_iter().collect();
        let same: Coverage = [2u32].into_iter().collect();
        let new: Coverage = [2u32, 9].into_iter().collect();
        assert!(!a.would_grow(&same));
        assert!(a.would_grow(&new));
    }

    #[test]
    fn macro_records_this_line() {
        let mut c = Coverage::new();
        cov!(c);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn count_points_counts_call_sites() {
        let src = "fn f(c: &mut Coverage) { cov!(c); if x { cov!(c); } }";
        assert_eq!(count_points(src), 2);
    }
}
