//! Curated input corpora standing in for the paper's "large test suites"
//! (the Figure 7b upper-bound proxy for Python, Ruby, and JavaScript).
//!
//! The paper compares GLADE's fuzzing coverage against the coverage achieved
//! by each interpreter's own test suite (100k+ lines). Shipping those suites
//! is impossible here, so each stand-in gets a hand-curated corpus that
//! exercises a wide slice of its parser — deliberately much broader than the
//! 3–4 seed inputs used for synthesis.

/// The extended Ruby corpus.
pub fn ruby() -> Vec<Vec<u8>> {
    [
        &b"x = 1"[..],
        b"x = 1 + 2 * 3 - 4 / 5 % 6",
        b"y = x ** 2",
        b"s = \"interp #{a + b} done\"",
        b"t = 'single quoted'",
        b"sym = :my_symbol",
        b"arr = [1, 2, [3, 4], \"five\"]",
        b"h = {:a => 1, :b => {:c => 2}}",
        b"@ivar = arr[0]",
        b"x += 1\ny -= 2\nz *= 3",
        b"a = b == c && d != e || !f",
        b"cmp = x <=> y",
        b"bits = a << 2 >> 1",
        b"def noargs\nend",
        b"def one(a)\n  a\nend",
        b"def many(a, b, c)\n  a + b + c\nend",
        b"def pred?(x)\n  x > 0\nend",
        b"def bang!(x)\n  x\nend",
        b"if a\n  b\nend",
        b"if a then b end",
        b"if a\n  b\nelse\n  c\nend",
        b"if a\n  b\nelsif c\n  d\nelsif e\n  f\nelse\n  g\nend",
        b"unless done\n  work\nend",
        b"while i < 10\n  i += 1\nend",
        b"until full\n  fill\nend",
        b"while x\n  break\nend",
        b"while x\n  next\nend",
        b"list.each do |item|\n  puts item\nend",
        b"list.map do |a, b|\n  a + b\nend",
        b"obj.method.chain.more",
        b"obj.call(1, 2).index[3]",
        b"puts \"hello\"",
        b"puts a, b, :c",
        b"return",
        b"def f\n  return 42\nend",
        b"# comment only\n",
        b"x = 1 # trailing comment",
        b"nested = [[1, 2], [3, [4, 5]]]",
        b"deep = {:k => [1, {:m => 2}]}",
        b"a = (1 + 2) * (3 - (4 / 2))",
        b"s2 = \"escape \\\" quote\"",
        b"f(g(h(1)))",
        b"x = nil\ny = true\nz = false",
        b"not_kw = notx",
        b"counter = 0\n10.times do |n|\n  counter += n\nend\nputs counter",
        b"def fib(n)\n  if n < 2\n    n\n  else\n    fib(n - 1) + fib(n - 2)\n  end\nend",
    ]
    .iter()
    .map(|s| s.to_vec())
    .collect()
}

/// The extended Python corpus.
pub fn python() -> Vec<Vec<u8>> {
    [
        &b"x = 1\n"[..],
        b"x = 1 + 2 * 3 - 4 / 5 % 6\n",
        b"y = 2 ** 8 // 3\n",
        b"s = 'single'\nt = \"double\"\n",
        b"u = \"esc \\\" ape\"\n",
        b"lst = [1, 2, [3, 4], 'five']\n",
        b"d = {1: 'a', 'b': [2, 3]}\n",
        b"tup = (1, 2, 3)\n",
        b"empty = ()\n",
        b"x += 1; y -= 2\n",
        b"z = a and b or not c\n",
        b"w = 1 < 2 <= 3 != 4\n",
        b"m = x in lst\n",
        b"n = x not in lst\n",
        b"o = a is not None\n",
        b"h = 0xDEAD + 0x1f\n",
        b"f = 1.5e-3 + 2.\n",
        b"pass\n",
        b"import os\n",
        b"import os.path\n",
        b"from sys import argv\n",
        b"from os import *\n",
        b"def f():\n    pass\n",
        b"def g(a, b=2, c=3):\n    return a + b + c\n",
        b"def outer():\n    def inner():\n        return 1\n    return inner()\n",
        b"if x:\n    y = 1\n",
        b"if x: y = 1\n",
        b"if a:\n    b = 1\nelif c:\n    d = 2\nelse:\n    e = 3\n",
        b"while True:\n    break\n",
        b"while x < 10:\n    x += 1\nelse_done = 1\n",
        b"for i in [1, 2, 3]:\n    print(i)\n",
        b"for k in d:\n    continue\n",
        b"class C:\n    pass\n",
        b"class D(Base):\n    def m(self):\n        return self.x\n",
        b"fn = lambda a, b: a * b\n",
        b"g = lambda: 0\n",
        b"result = f(1)(2)[3].attr\n",
        b"obj.a.b.c = value\n",
        b"matrix[0][1] = matrix[1][0]\n",
        b"# whole line comment\nx = 1  # trailing\n",
        b"def fib(n):\n    if n < 2:\n        return n\n    return fib(n - 1) + fib(n - 2)\n",
        b"acc = 0\nfor i in [1, 2, 3, 4]:\n    if i % 2 == 0:\n        acc += i\n    else:\n        acc -= i\nprint(acc)\n",
    ]
    .iter()
    .map(|s| s.to_vec())
    .collect()
}

/// The extended JavaScript corpus.
pub fn javascript() -> Vec<Vec<u8>> {
    [
        &b"var x = 1;"[..],
        b"let y = 2, z = 3;",
        b"const k = 'str';",
        b"x = 1 + 2 * 3 - 4 / 5 % 6;",
        b"b = a << 2 >> 1 >>> 3;",
        b"m = p & q | r ^ s;",
        b"t = a === b || c !== d && !e;",
        b"u = x < y ? 1 : 2;",
        b"v = (1, 2, 3);",
        b"n = 0xFF + 1.5e3 + 2.;",
        b"s = \"double\" + 'single';",
        b"e = \"esc \\\" ape\";",
        b"arr = [1, 'two', [3, 4]];",
        b"obj = {a: 1, 'b': 2, 3: [4]};",
        b"nested = {o: {p: {q: 1}}};",
        b"function f() { return; }",
        b"function g(a, b) { return a + b; }",
        b"var h = function (x) { return x * 2; };",
        b"function outer() { function inner() { return 1; } return inner(); }",
        b"f(1, 2, g(3));",
        b"obj.method().chain[0](x);",
        b"if (a) b();",
        b"if (a) { b(); } else { c(); }",
        b"if (a) b(); else if (c) d(); else e();",
        b"while (i < 10) i = i + 1;",
        b"while (x) { break; }",
        b"do { i++; } while (i < 5);",
        b"for (var i = 0; i < 10; i++) { sum = sum + i; }",
        b"for (i = 0; i < n; i = i + 2) f(i);",
        b"for (;;) { break; }",
        b"i++; j--; ++k; --l;",
        b"t = typeof x;",
        b"o = new Ctor(1, 2);",
        b"neg = -x + +y - ~z;",
        b"x = y = z = 0;",
        b"a += 1; b -= 2; c *= 3; d /= 4; e %= 5;",
        b"bits <<= 1; bits >>= 2; bits &= 3; bits |= 4; bits ^= 5;",
        b"// line comment\nx = 1;",
        b"/* block comment */ y = 2;",
        b"{ var scoped = 1; f(scoped); }",
        b";;;",
        b"matrix[0][1] = matrix[1][0];",
        b"function fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }",
    ]
    .iter()
    .map(|s| s.to_vec())
    .collect()
}

#[cfg(test)]
mod tests {
    use crate::programs::{JavaScript, Python, Ruby};
    use crate::Target;

    #[test]
    fn ruby_corpus_is_valid() {
        for s in super::ruby() {
            assert!(Ruby.run(&s).valid, "ruby corpus: {:?}", String::from_utf8_lossy(&s));
        }
    }

    #[test]
    fn python_corpus_is_valid() {
        for s in super::python() {
            assert!(Python.run(&s).valid, "python corpus: {:?}", String::from_utf8_lossy(&s));
        }
    }

    #[test]
    fn javascript_corpus_is_valid() {
        for s in super::javascript() {
            assert!(JavaScript.run(&s).valid, "js corpus: {:?}", String::from_utf8_lossy(&s));
        }
    }

    #[test]
    fn corpora_are_substantial() {
        assert!(super::ruby().len() >= 40);
        assert!(super::python().len() >= 40);
        assert!(super::javascript().len() >= 40);
    }
}
