//! The `Target` abstraction: a program under test.
//!
//! A target bundles what the paper's evaluation needs from each subject
//! program (Section 8.3): a way to *run* it on an input (yielding validity
//! and line coverage), its seed inputs ("small test suites that come with
//! programs or examples from documentation"), and its coverable-line count
//! (the denominator of the coverage metrics).

use crate::cov::RunOutcome;
use glade_core::Oracle;

/// A program under test.
pub trait Target: Sync {
    /// Short name used in reports ("sed", "xml", …).
    fn name(&self) -> &'static str;

    /// Runs the program on `input`, reporting validity and coverage.
    fn run(&self, input: &[u8]) -> RunOutcome;

    /// Number of instrumented source lines (the `#(lines coverable)`
    /// denominator), counted statically from the implementation source.
    fn coverable_lines(&self) -> usize;

    /// Lines of implementation source code (the paper's Figure 6 column).
    fn source_lines(&self) -> usize;

    /// The seed inputs `E_in ⊆ L*`.
    fn seeds(&self) -> Vec<Vec<u8>>;

    /// A larger curated corpus standing in for the paper's "large test
    /// suites" (Figure 7b upper-bound proxy). Defaults to the seeds.
    fn corpus(&self) -> Vec<Vec<u8>> {
        self.seeds()
    }
}

/// Adapts a [`Target`] into a GLADE membership [`Oracle`]: an input is in
/// the language iff the program accepts it.
#[derive(Clone, Copy)]
pub struct TargetOracle<'t> {
    target: &'t dyn Target,
}

impl<'t> TargetOracle<'t> {
    /// Wraps `target`.
    pub fn new(target: &'t dyn Target) -> Self {
        TargetOracle { target }
    }
}

impl Oracle for TargetOracle<'_> {
    fn accepts(&self, input: &[u8]) -> bool {
        self.target.run(input).valid
    }
}

impl std::fmt::Debug for TargetOracle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TargetOracle({})", self.target.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cov::Coverage;

    struct Dummy;
    impl Target for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn run(&self, input: &[u8]) -> RunOutcome {
            RunOutcome { valid: input.len().is_multiple_of(2), coverage: Coverage::new() }
        }
        fn coverable_lines(&self) -> usize {
            0
        }
        fn source_lines(&self) -> usize {
            0
        }
        fn seeds(&self) -> Vec<Vec<u8>> {
            vec![b"ab".to_vec()]
        }
    }

    #[test]
    fn oracle_adapter_tracks_validity() {
        let t = Dummy;
        let o = TargetOracle::new(&t);
        assert!(o.accepts(b"xy"));
        assert!(!o.accepts(b"x"));
    }

    #[test]
    fn corpus_defaults_to_seeds() {
        assert_eq!(Dummy.corpus(), Dummy.seeds());
    }
}
