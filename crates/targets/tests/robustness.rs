//! Property-based robustness tests: the instrumented parsers are fed to
//! fuzzers for millions of executions, so they must never panic, must be
//! deterministic, and must keep their coverage accounting consistent on
//! arbitrary byte strings.

use glade_targets::programs::all_targets;
use proptest::prelude::*;

fn arb_input() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // Arbitrary bytes.
        proptest::collection::vec(any::<u8>(), 0..120),
        // Structured-ish ASCII soup, which digs deeper into the parsers.
        proptest::collection::vec(
            prop_oneof![
                Just(b'<'),
                Just(b'>'),
                Just(b'/'),
                Just(b'a'),
                Just(b'"'),
                Just(b'\''),
                Just(b'\\'),
                Just(b'('),
                Just(b')'),
                Just(b'['),
                Just(b']'),
                Just(b'{'),
                Just(b'}'),
                Just(b'%'),
                Just(b'\n'),
                Just(b' '),
                Just(b'='),
                Just(b';'),
                Just(b':'),
                Just(b'|'),
                Just(b'*'),
                Just(b'0'),
                Just(b'x'),
                Just(b'#'),
            ],
            0..120
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// No parser panics, for any input.
    #[test]
    fn parsers_never_panic(input in arb_input()) {
        for t in all_targets() {
            let _ = t.run(&input);
        }
    }

    /// Parsers are deterministic: same input, same verdict and coverage.
    #[test]
    fn parsers_are_deterministic(input in arb_input()) {
        for t in all_targets() {
            let r1 = t.run(&input);
            let r2 = t.run(&input);
            prop_assert_eq!(r1.valid, r2.valid, "{}", t.name());
            prop_assert_eq!(r1.coverage, r2.coverage, "{}", t.name());
        }
    }

    /// Observed coverage never exceeds the static coverable-line count.
    #[test]
    fn coverage_bounded_by_denominator(input in arb_input()) {
        for t in all_targets() {
            let r = t.run(&input);
            prop_assert!(
                r.coverage.len() <= t.coverable_lines(),
                "{}: {} > {}",
                t.name(),
                r.coverage.len(),
                t.coverable_lines()
            );
        }
    }

    /// A prefix of a valid input plus garbage is handled without panicking
    /// (parser resynchronization paths).
    #[test]
    fn seed_mutations_never_panic(garbage in proptest::collection::vec(any::<u8>(), 0..20),
                                  pos in any::<proptest::sample::Index>()) {
        for t in all_targets() {
            for seed in t.seeds() {
                let cut = pos.index(seed.len() + 1);
                let mut mutant = seed[..cut].to_vec();
                mutant.extend_from_slice(&garbage);
                mutant.extend_from_slice(&seed[cut..]);
                let _ = t.run(&mutant);
            }
        }
    }
}
