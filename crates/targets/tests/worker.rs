//! End-to-end tests for the `glade-oracle-worker` harness: the pooled
//! worker protocol against real child processes, spawn-per-query `--once`
//! mode, and full-pipeline synthesis over the pool.

use glade_core::{GladeBuilder, Oracle, PooledProcessOracle, ProcessOracle};
use glade_targets::programs::Xml;
use glade_targets::TargetOracle;

/// Path of the worker binary, provided by cargo for same-package tests.
fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_glade-oracle-worker")
}

#[test]
fn pooled_worker_agrees_with_in_process_oracle() {
    let xml = Xml;
    let reference = TargetOracle::new(&xml);
    let pooled = PooledProcessOracle::new(worker_bin()).arg("xml").pool_size(2);
    let cases: &[&[u8]] = &[
        b"<a>hi</a>",
        b"<a><b>x</b></a>",
        b"<a>hi</a",
        b"",
        b"plain text",
        b"<",
        b"\x00\xff binary \x01",
    ];
    for &input in cases {
        assert_eq!(
            pooled.accepts(input),
            reference.accepts(input),
            "verdicts diverged for {:?}",
            String::from_utf8_lossy(input)
        );
    }
    assert_eq!(pooled.failure_count(), 0, "healthy workers never fail");
}

#[test]
fn once_mode_supports_spawn_per_query() {
    let xml = Xml;
    let reference = TargetOracle::new(&xml);
    let spawn = ProcessOracle::new(worker_bin()).arg("xml").arg("--once");
    for input in [&b"<a>hi</a>"[..], b"<a>hi</a", b"", b"nested <a></a> text"] {
        assert_eq!(spawn.accepts(input), reference.accepts(input));
    }
    assert_eq!(spawn.failure_count(), 0);
}

#[test]
fn pooled_worker_serves_languages_too() {
    let pooled = PooledProcessOracle::new(worker_bin()).arg("toy-xml");
    assert!(pooled.accepts(b"<a>hi</a>"));
    assert!(pooled.accepts(b""));
    assert!(!pooled.accepts(b"<a>hi</a"));
}

#[test]
fn unknown_subject_exits_nonzero_and_pool_degrades() {
    // The worker exits immediately on an unknown subject; every pooled
    // query degrades to a counted failure (no fallback installed).
    let pooled = PooledProcessOracle::new(worker_bin()).arg("no-such-subject");
    assert!(!pooled.accepts(b"x"));
    assert!(pooled.failure_count() >= 1);
}

#[test]
fn full_synthesis_over_the_pool_matches_in_process_synthesis() {
    // The running example driven entirely through child processes: the
    // grammar and the distinct-query count must be exactly what the
    // in-process oracle produces.
    let seeds = vec![b"<a>hi</a>".to_vec()];
    let in_process = {
        let xml = glade_targets::languages::toy_xml();
        let oracle = xml.oracle();
        GladeBuilder::new().synthesize(&seeds, &oracle).expect("valid seed")
    };
    let pooled_oracle = PooledProcessOracle::new(worker_bin()).arg("toy-xml").pool_size(4);
    let pooled = GladeBuilder::new()
        .worker_threads(4)
        .synthesize(&seeds, &pooled_oracle)
        .expect("valid seed");
    assert_eq!(
        glade_grammar::grammar_to_text(&pooled.grammar),
        glade_grammar::grammar_to_text(&in_process.grammar),
        "pooled execution changed the synthesized grammar"
    );
    assert_eq!(pooled.stats.unique_queries, in_process.stats.unique_queries);
    assert_eq!(pooled.stats.oracle_failures, 0);
}
