//! End-to-end tests for the `glade-oracle-worker` harness: the pooled
//! worker protocol against real child processes, spawn-per-query `--once`
//! mode, and full-pipeline synthesis over the pool — swept across the
//! pool-size × frame-version × memo matrix (`GLADE_TEST_POOL_SIZE`,
//! `GLADE_TEST_WIRE`, `GLADE_TEST_MEMO`) and hardened against workers
//! that crash mid-batch.

use glade_core::{GladeBuilder, Oracle, PooledProcessOracle, ProcessOracle};
use glade_targets::programs::Xml;
use glade_targets::TargetOracle;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Path of the worker binary, provided by cargo for same-package tests.
fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_glade-oracle-worker")
}

/// Golden distinct/total query counts for the seed `<a>hi</a>` (pinned in
/// `glade-core`'s `parallel.rs`); the pooled path must reproduce them.
/// With the query-reduction layer on (the default) the planner poses
/// fewer distinct queries than the raw memo-off cost model.
const GOLDEN_UNIQUE_OFF: usize = 1324;
const GOLDEN_TOTAL_OFF: usize = 1442;
const GOLDEN_UNIQUE_ON: usize = 965;
const GOLDEN_TOTAL_ON: usize = 985;

/// Memo mode for the matrix; `GLADE_TEST_MEMO=off` disables the query-
/// reduction layer (the CI matrix sweeps it). Default: on.
fn matrix_memo() -> bool {
    !matches!(std::env::var("GLADE_TEST_MEMO").as_deref(), Ok("off") | Ok("0") | Ok("false"))
}

fn golden_unique() -> usize {
    if matrix_memo() {
        GOLDEN_UNIQUE_ON
    } else {
        GOLDEN_UNIQUE_OFF
    }
}

fn golden_total() -> usize {
    if matrix_memo() {
        GOLDEN_TOTAL_ON
    } else {
        GOLDEN_TOTAL_OFF
    }
}

/// Pool sizes to sweep; `GLADE_TEST_POOL_SIZE` pins one (the CI matrix
/// sweeps it so every cell stays fast).
fn matrix_pool_sizes() -> Vec<usize> {
    match std::env::var("GLADE_TEST_POOL_SIZE").ok().and_then(|v| v.parse().ok()) {
        Some(n) => vec![n],
        None => vec![1, 2, 8],
    }
}

/// Whether the matrix pins the legacy v1 wire (`GLADE_TEST_WIRE=v1`).
fn matrix_wire_v1() -> bool {
    matches!(std::env::var("GLADE_TEST_WIRE").as_deref(), Ok("v1") | Ok("1"))
}

/// Per-test timeout guard: a dispatcher bug over nonblocking pipes would
/// wedge the job in a never-waking `poll(2)`; the watchdog fails fast
/// instead. `GLADE_TEST_TIMEOUT_SECS` tunes the limit (default 120 s).
struct Watchdog {
    done: Arc<AtomicBool>,
}

impl Watchdog {
    fn arm(name: &'static str) -> Self {
        let secs = std::env::var("GLADE_TEST_TIMEOUT_SECS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(120u64);
        let done = Arc::new(AtomicBool::new(false));
        let flag = done.clone();
        std::thread::spawn(move || {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(secs);
            while std::time::Instant::now() < deadline {
                if flag.load(Ordering::Relaxed) {
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
            eprintln!("watchdog: `{name}` still running after {secs}s — a protocol pipe is hung");
            std::process::exit(99);
        });
        Watchdog { done }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.done.store(true, Ordering::Relaxed);
    }
}

#[test]
fn pooled_worker_agrees_with_in_process_oracle() {
    let xml = Xml;
    let reference = TargetOracle::new(&xml);
    let pooled = PooledProcessOracle::new(worker_bin()).arg("xml").pool_size(2);
    let cases: &[&[u8]] = &[
        b"<a>hi</a>",
        b"<a><b>x</b></a>",
        b"<a>hi</a",
        b"",
        b"plain text",
        b"<",
        b"\x00\xff binary \x01",
    ];
    for &input in cases {
        assert_eq!(
            pooled.accepts(input),
            reference.accepts(input),
            "verdicts diverged for {:?}",
            String::from_utf8_lossy(input)
        );
    }
    assert_eq!(pooled.failure_count(), 0, "healthy workers never fail");
}

#[test]
fn once_mode_supports_spawn_per_query() {
    let xml = Xml;
    let reference = TargetOracle::new(&xml);
    let spawn = ProcessOracle::new(worker_bin()).arg("xml").arg("--once");
    for input in [&b"<a>hi</a>"[..], b"<a>hi</a", b"", b"nested <a></a> text"] {
        assert_eq!(spawn.accepts(input), reference.accepts(input));
    }
    assert_eq!(spawn.failure_count(), 0);
}

#[test]
fn pooled_worker_serves_languages_too() {
    let pooled = PooledProcessOracle::new(worker_bin()).arg("toy-xml");
    assert!(pooled.accepts(b"<a>hi</a>"));
    assert!(pooled.accepts(b""));
    assert!(!pooled.accepts(b"<a>hi</a"));
}

#[test]
fn unknown_subject_exits_nonzero_and_pool_degrades() {
    // The worker exits immediately on an unknown subject; every pooled
    // query degrades to a counted failure (no fallback installed).
    let pooled = PooledProcessOracle::new(worker_bin()).arg("no-such-subject");
    assert!(!pooled.accepts(b"x"));
    assert!(pooled.failure_count() >= 1);
}

#[test]
fn full_synthesis_over_the_pool_matches_in_process_synthesis() {
    // The running example driven entirely through child processes, swept
    // over the pool-size × frame-version × frame-batch matrix through the
    // session API: grammar bytes and both query counts must be exactly
    // what the in-process oracle produces — the golden 1324/1442 pins —
    // in every cell.
    let _guard = Watchdog::arm("full_synthesis_over_the_pool_matches_in_process_synthesis");
    let seeds = vec![b"<a>hi</a>".to_vec()];
    let in_process = {
        let xml = glade_targets::languages::toy_xml();
        let oracle = xml.oracle();
        GladeBuilder::new()
            .memoize_byte_classes(matrix_memo())
            .synthesize(&seeds, &oracle)
            .expect("valid seed")
    };
    assert_eq!(in_process.stats.unique_queries, golden_unique());
    assert_eq!(in_process.stats.total_queries, golden_total());
    let reference_grammar = glade_grammar::grammar_to_text(&in_process.grammar);
    for pool_size in matrix_pool_sizes() {
        for frame_batch in [1usize, 32] {
            let mut pooled_oracle =
                PooledProcessOracle::new(worker_bin()).arg("toy-xml").pool_size(pool_size);
            if matrix_wire_v1() {
                pooled_oracle = pooled_oracle.max_wire_version(1);
            }
            pooled_oracle = pooled_oracle.frame_batch(frame_batch);
            let mut session = GladeBuilder::new()
                .worker_threads(4)
                .memoize_byte_classes(matrix_memo())
                .session(&pooled_oracle);
            let pooled = session.add_seeds(&seeds).expect("valid seed");
            let cell = format!("pool={pool_size} frame_batch={frame_batch}");
            assert_eq!(
                glade_grammar::grammar_to_text(&pooled.grammar),
                reference_grammar,
                "pooled execution changed the synthesized grammar ({cell})"
            );
            assert_eq!(pooled.stats.unique_queries, golden_unique(), "{cell}");
            assert_eq!(pooled.stats.total_queries, golden_total(), "{cell}");
            assert_eq!(pooled.stats.oracle_failures, 0, "{cell}");
            assert_eq!(pooled_oracle.respawn_count(), 0, "healthy workers respawned ({cell})");
        }
    }
}

#[test]
fn synthesis_over_crashing_workers_matches_in_process_synthesis() {
    // Crash-recovery acceptance at the harness level: every worker dies
    // after 150 answers (well inside the 1324-query run, so the pool
    // reaps and respawns repeatedly, tearing v2 batches mid-frame), and
    // the result must still be byte- and count-identical to the
    // in-process run, with zero counted failures.
    let _guard = Watchdog::arm("synthesis_over_crashing_workers_matches_in_process_synthesis");
    let seeds = vec![b"<a>hi</a>".to_vec()];
    let in_process = {
        let xml = glade_targets::languages::toy_xml();
        let oracle = xml.oracle();
        GladeBuilder::new()
            .memoize_byte_classes(matrix_memo())
            .synthesize(&seeds, &oracle)
            .expect("valid seed")
    };
    for pool_size in matrix_pool_sizes() {
        let mut pooled_oracle = PooledProcessOracle::new(worker_bin())
            .arg("toy-xml")
            .arg("--crash-after")
            .arg("150")
            .pool_size(pool_size);
        if matrix_wire_v1() {
            pooled_oracle = pooled_oracle.max_wire_version(1);
        }
        let mut session = GladeBuilder::new()
            .worker_threads(4)
            .memoize_byte_classes(matrix_memo())
            .session(&pooled_oracle);
        let pooled = session.add_seeds(&seeds).expect("valid seed");
        assert_eq!(
            glade_grammar::grammar_to_text(&pooled.grammar),
            glade_grammar::grammar_to_text(&in_process.grammar),
            "crash recovery changed the grammar (pool={pool_size})"
        );
        assert_eq!(pooled.stats.unique_queries, in_process.stats.unique_queries);
        assert_eq!(pooled.stats.total_queries, in_process.stats.total_queries);
        assert_eq!(pooled.stats.oracle_failures, 0, "pool={pool_size}");
        assert!(
            pooled_oracle.respawn_count() > 0,
            "the run must outlive 150-answer workers (pool={pool_size})"
        );
    }
}

#[test]
fn synthesis_over_hanging_workers_keeps_golden_pins() {
    // Deadline acceptance at the harness level: every worker answers 150
    // queries and then hangs mid-batch *without exiting* (`--hang-after`
    // routes through the deterministic fault harness). With an oracle
    // timeout configured through the session builder, the run completes —
    // each hang is detected at the deadline, the worker killed, and the
    // abandoned queries replayed — reproducing the golden pins
    // byte-identically with every hang accounted for: no silent `false`,
    // no stuck engine.
    let _guard = Watchdog::arm("synthesis_over_hanging_workers_keeps_golden_pins");
    let seeds = vec![b"<a>hi</a>".to_vec()];
    let in_process = {
        let xml = glade_targets::languages::toy_xml();
        let oracle = xml.oracle();
        GladeBuilder::new()
            .memoize_byte_classes(matrix_memo())
            .synthesize(&seeds, &oracle)
            .expect("valid seed")
    };
    let pooled_oracle = PooledProcessOracle::new(worker_bin())
        .arg("toy-xml")
        .arg("--hang-after")
        .arg("150")
        .pool_size(2);
    let mut session = GladeBuilder::new()
        .worker_threads(4)
        .memoize_byte_classes(matrix_memo())
        .oracle_timeout(Duration::from_millis(250))
        .session(&pooled_oracle);
    let pooled = session.add_seeds(&seeds).expect("valid seed");
    assert_eq!(
        glade_grammar::grammar_to_text(&pooled.grammar),
        glade_grammar::grammar_to_text(&in_process.grammar),
        "hang recovery changed the grammar"
    );
    assert_eq!(pooled.stats.unique_queries, golden_unique());
    assert_eq!(pooled.stats.total_queries, golden_total());
    assert_eq!(pooled.stats.oracle_failures, 0, "every hang was recovered");
    assert!(
        pooled.stats.timed_out_queries > 0,
        "a {}-query run must outlive 150-answer workers",
        golden_unique()
    );
    assert!(pooled_oracle.respawn_count() > 0);
}

#[test]
fn stalling_worker_is_slow_but_healthy_under_a_deadline() {
    // `--stall-ms 20` makes the worker trickle each verdict as its own
    // flushed byte after a ~20 ms pause, so an 8-query frame takes longer
    // than the 150 ms deadline end to end. The deadline re-arms on every
    // verdict byte: a slow-but-progressing worker must never be declared
    // hung, killed, or respawned.
    let _guard = Watchdog::arm("stalling_worker_is_slow_but_healthy_under_a_deadline");
    let xml = glade_targets::languages::toy_xml();
    let reference = xml.oracle();
    let inputs: Vec<Vec<u8>> = (0..24usize)
        .map(|i| {
            if i % 3 == 2 {
                format!("<a>{i}</a").into_bytes() // truncated: rejected
            } else {
                format!("<a>{i}</a>").into_bytes()
            }
        })
        .collect();
    let refs: Vec<&[u8]> = inputs.iter().map(Vec::as_slice).collect();
    let expected: Vec<Option<bool>> = inputs.iter().map(|i| Some(reference.accepts(i))).collect();
    let pool = PooledProcessOracle::new(worker_bin())
        .arg("toy-xml")
        .arg("--stall-ms")
        .arg("20")
        .pool_size(1)
        .frame_batch(8)
        .query_timeout(Duration::from_millis(150));
    assert_eq!(pool.accepts_batch_checked(&refs), expected);
    assert_eq!(pool.timed_out_count(), 0, "a slow-but-healthy worker was declared hung");
    assert_eq!(pool.respawn_count(), 0, "a slow-but-healthy worker was killed");
    assert_eq!(pool.failure_count(), 0);
}

#[test]
fn flaky_spawns_trip_the_breaker_and_recover_via_fallback() {
    // `--flaky-spawn` makes alternate spawns of the worker die instantly
    // (a cross-process counter file carries the parity), and
    // `--crash-after 2` keeps forcing respawns. With `max_respawns(2)` the
    // crash→dead-spawn streak trips the slot's circuit breaker; while the
    // breaker is open, queries degrade to the spawn-per-query fallback
    // (correct verdicts, zero counted failures), and once the cool-down
    // passes a half-open probe spawn recovers the slot.
    let _guard = Watchdog::arm("flaky_spawns_trip_the_breaker_and_recover_via_fallback");
    let counter =
        std::env::temp_dir().join(format!("glade-flaky-worker-{}.ctr", std::process::id()));
    let _ = std::fs::remove_file(&counter);
    let fallback = ProcessOracle::new(worker_bin()).arg("toy-xml").arg("--once");
    let pool = PooledProcessOracle::new(worker_bin())
        .arg("toy-xml")
        .arg("--crash-after")
        .arg("2")
        .arg("--flaky-spawn")
        .arg(counter.to_str().expect("temp path is utf-8"))
        .pool_size(1)
        .max_respawns(2)
        .respawn_backoff(Duration::from_millis(1))
        .fallback(fallback);
    let cases: &[(&[u8], bool)] =
        &[(b"<a>hi</a>", true), (b"<a>hi</a", false), (b"", true), (b"<a>xy</a>", true)];
    for round in 0..10usize {
        for &(input, expect) in cases {
            assert_eq!(pool.accepts(input), expect, "round {round}");
        }
        // Let breaker cool-downs (50 ms at this backoff base) elapse so
        // half-open probes get their chance.
        std::thread::sleep(Duration::from_millis(20));
    }
    let _ = std::fs::remove_file(&counter);
    assert!(pool.tripped_worker_count() >= 1, "trips: {}", pool.tripped_worker_count());
    assert!(pool.recovered_worker_count() >= 1, "recoveries: {}", pool.recovered_worker_count());
    assert_eq!(pool.failure_count(), 0, "the fallback answered every breaker-open query");
    assert!(pool.respawn_count() >= 1);
}

#[test]
fn v1_pinned_worker_full_synthesis_still_matches() {
    // The `--wire-v1` worker flag pins the legacy protocol end to end
    // (worker side), independent of the oracle-side cap: negotiation must
    // settle on v1 and the synthesis result must not change.
    let _guard = Watchdog::arm("v1_pinned_worker_full_synthesis_still_matches");
    let seeds = vec![b"<a>hi</a>".to_vec()];
    let in_process = {
        let xml = glade_targets::languages::toy_xml();
        let oracle = xml.oracle();
        GladeBuilder::new().synthesize(&seeds, &oracle).expect("valid seed")
    };
    let pooled_oracle =
        PooledProcessOracle::new(worker_bin()).arg("toy-xml").arg("--wire-v1").pool_size(2);
    let pooled = GladeBuilder::new().synthesize(&seeds, &pooled_oracle).expect("valid seed");
    assert_eq!(
        glade_grammar::grammar_to_text(&pooled.grammar),
        glade_grammar::grammar_to_text(&in_process.grammar)
    );
    assert_eq!(pooled.stats.unique_queries, in_process.stats.unique_queries);
    assert_eq!(pooled.stats.oracle_failures, 0);
    assert_eq!(pooled_oracle.respawn_count(), 0, "negotiating down is not a crash");
}

#[test]
fn mid_stream_probe_payload_is_an_ordinary_query() {
    // A v1-capped oracle never probes, so a *membership query* that
    // happens to equal the negotiation probe must be answered like any
    // other input by a v2-capable worker — the probe is special on the
    // first frame of a connection only. (Regression: the worker used to
    // intercept it mid-stream, tripping an accidental upgrade that the
    // v1 oracle could only read as a crash.)
    let _guard = Watchdog::arm("mid_stream_probe_payload_is_an_ordinary_query");
    let pool = PooledProcessOracle::new(worker_bin()).arg("toy-xml").max_wire_version(1);
    assert!(pool.accepts(b"<a>hi</a>"), "warm the connection past its first frame");
    assert!(!pool.accepts(glade_core::wire::WIRE_V2_PROBE), "probe bytes are not toy-xml");
    assert!(pool.accepts(b"<a>ok</a>"), "the connection survived");
    assert_eq!(pool.failure_count(), 0);
    assert_eq!(pool.respawn_count(), 0, "no accidental upgrade, no crash");
}

#[test]
fn batched_dispatch_against_real_target_matches_reference() {
    // The batched entry point itself (not just synthesis) against the
    // instrumented XML target: verdicts must equal the in-process
    // reference for a workload mixing valid, invalid, empty, and binary
    // documents.
    let _guard = Watchdog::arm("batched_dispatch_against_real_target_matches_reference");
    let xml = Xml;
    let reference = TargetOracle::new(&xml);
    let inputs: Vec<Vec<u8>> = (0..240usize)
        .map(|i| match i % 5 {
            0 => format!("<a>{}</a>", "x".repeat(i % 11)).into_bytes(),
            1 => format!("<a><b>{}</b></a>", "y".repeat(i % 7)).into_bytes(),
            2 => format!("<a>{}</a", "z".repeat(i % 13)).into_bytes(), // truncated
            3 => Vec::new(),
            _ => vec![0x00, 0xff, b'<', (i % 256) as u8],
        })
        .collect();
    let refs: Vec<&[u8]> = inputs.iter().map(Vec::as_slice).collect();
    let expected: Vec<Option<bool>> = inputs.iter().map(|i| Some(reference.accepts(i))).collect();
    let pool = PooledProcessOracle::new(worker_bin()).arg("xml").pool_size(3).frame_batch(16);
    assert_eq!(pool.accepts_batch_checked(&refs), expected);
    assert_eq!(pool.failure_count(), 0);
}
