//! Earley recognition and parsing for [`Grammar`]s.
//!
//! GLADE needs general context-free parsing in two places:
//!
//! * **Recall measurement** (Section 8.2): deciding whether a string sampled
//!   from the target language belongs to the synthesized grammar.
//! * **The grammar-based fuzzer** (Section 8.3): constructing the parse tree
//!   of a seed input under the synthesized grammar so subtrees can be
//!   replaced by freshly sampled derivations.
//!
//! Synthesized grammars are arbitrary CFGs (left-recursive star expansions,
//! ε-productions, ambiguity), so we use an Earley chart parser with the
//! Aycock–Horspool nullable-prediction fix, plus a memoized top-down walk of
//! the completed chart to extract a single parse tree.

use crate::cfg::{Grammar, NtId, Sym};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// One node of a parse tree produced by [`Earley::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseTree {
    /// A matched terminal byte at input position `pos`.
    Leaf {
        /// The matched byte.
        byte: u8,
        /// Its position in the input.
        pos: usize,
    },
    /// A nonterminal expansion.
    Node {
        /// The expanded nonterminal.
        nt: NtId,
        /// Index of the chosen production within `grammar.productions(nt)`.
        prod: usize,
        /// Child subtrees, one per right-hand-side symbol.
        children: Vec<ParseTree>,
        /// Start offset (inclusive) of the derived substring.
        start: usize,
        /// End offset (exclusive) of the derived substring.
        end: usize,
    },
}

impl ParseTree {
    /// The `(start, end)` byte span this subtree derives.
    pub fn span(&self) -> (usize, usize) {
        match self {
            ParseTree::Leaf { pos, .. } => (*pos, *pos + 1),
            ParseTree::Node { start, end, .. } => (*start, *end),
        }
    }

    /// Appends the derived bytes (the subtree's yield) to `out`.
    pub fn write_yield(&self, out: &mut Vec<u8>) {
        match self {
            ParseTree::Leaf { byte, .. } => out.push(*byte),
            ParseTree::Node { children, .. } => {
                for c in children {
                    c.write_yield(out);
                }
            }
        }
    }

    /// The derived bytes as a fresh vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_yield(&mut out);
        out
    }

    /// Collects references to every `Node` in the tree (preorder, including
    /// the root). Used by the grammar-based fuzzer to pick a random
    /// nonterminal occurrence.
    pub fn nodes(&self) -> Vec<&ParseTree> {
        let mut out = Vec::new();
        let mut stack = vec![self];
        while let Some(t) = stack.pop() {
            if let ParseTree::Node { children, .. } = t {
                out.push(t);
                for c in children {
                    stack.push(c);
                }
            }
        }
        out
    }
}

impl fmt::Display for ParseTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(t: &ParseTree, depth: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            for _ in 0..depth {
                write!(f, "  ")?;
            }
            match t {
                ParseTree::Leaf { byte, pos } => {
                    writeln!(f, "'{}' @{pos}", (*byte as char).escape_default())
                }
                ParseTree::Node { nt, prod, children, start, end } => {
                    writeln!(f, "{nt}/{prod} [{start}..{end}]")?;
                    for c in children {
                        go(c, depth + 1, f)?;
                    }
                    Ok(())
                }
            }
        }
        go(self, 0, f)
    }
}

/// Earley item: `lhs → rhs[..dot] · rhs[dot..]`, started at input position
/// `origin`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Item {
    nt: u32,
    prod: u32,
    dot: u32,
    origin: u32,
}

/// An Earley recognizer/parser for a borrowed [`Grammar`].
///
/// Construction precomputes the nullable set; each call to
/// [`Earley::accepts`] or [`Earley::parse`] runs the chart algorithm on one
/// input.
///
/// # Examples
///
/// ```
/// use glade_grammar::cfg::{GrammarBuilder, lit, nt};
/// use glade_grammar::Earley;
///
/// let mut b = GrammarBuilder::new();
/// let a = b.nt("A");
/// b.prod(a, [lit(b"<a>"), nt(a), lit(b"</a>")].concat());
/// b.prod(a, vec![]);
/// let g = b.build(a).unwrap();
///
/// let parser = Earley::new(&g);
/// assert!(parser.accepts(b"<a><a></a></a>"));
/// assert!(!parser.accepts(b"<a></a></a>"));
/// ```
#[derive(Debug)]
pub struct Earley<'g> {
    grammar: &'g Grammar,
    nullable: Vec<bool>,
}

impl<'g> Earley<'g> {
    /// Creates a parser for `grammar`.
    pub fn new(grammar: &'g Grammar) -> Self {
        let nullable = grammar.nullable_set();
        Earley { grammar, nullable }
    }

    /// The underlying grammar.
    pub fn grammar(&self) -> &'g Grammar {
        self.grammar
    }

    fn rhs(&self, item: &Item) -> &'g [Sym] {
        &self.grammar.productions(NtId(item.nt))[item.prod as usize]
    }

    /// Runs the chart algorithm, returning one item set per input position
    /// (`n + 1` sets).
    fn chart(&self, input: &[u8]) -> Vec<Vec<Item>> {
        let n = input.len();
        let mut sets: Vec<Vec<Item>> = vec![Vec::new(); n + 1];
        let mut seen: Vec<HashSet<Item>> = vec![HashSet::new(); n + 1];

        let start = self.grammar.start();
        for prod in 0..self.grammar.productions(start).len() as u32 {
            let it = Item { nt: start.0, prod, dot: 0, origin: 0 };
            if seen[0].insert(it) {
                sets[0].push(it);
            }
        }

        for k in 0..=n {
            let mut idx = 0;
            while idx < sets[k].len() {
                let item = sets[k][idx];
                idx += 1;
                let rhs = self.rhs(&item);
                if (item.dot as usize) < rhs.len() {
                    match rhs[item.dot as usize] {
                        Sym::Nt(b) => {
                            // Predict.
                            for prod in 0..self.grammar.productions(b).len() as u32 {
                                let it = Item { nt: b.0, prod, dot: 0, origin: k as u32 };
                                if seen[k].insert(it) {
                                    sets[k].push(it);
                                }
                            }
                            // Aycock–Horspool: if B is nullable, also advance
                            // over it immediately.
                            if self.nullable[b.index()] {
                                let it = Item { dot: item.dot + 1, ..item };
                                if seen[k].insert(it) {
                                    sets[k].push(it);
                                }
                            }
                        }
                        Sym::Class(c) => {
                            // Scan.
                            if k < n && c.contains(input[k]) {
                                let it = Item { dot: item.dot + 1, ..item };
                                if seen[k + 1].insert(it) {
                                    sets[k + 1].push(it);
                                }
                            }
                        }
                    }
                } else {
                    // Complete: item.nt spans item.origin..k.
                    let origin = item.origin as usize;
                    // Note: when origin == k this loops over the growing set;
                    // index-based iteration handles that safely.
                    let mut j = 0;
                    while j < sets[origin].len() {
                        let parent = sets[origin][j];
                        j += 1;
                        let prhs = self.rhs(&parent);
                        if (parent.dot as usize) < prhs.len()
                            && prhs[parent.dot as usize] == Sym::Nt(NtId(item.nt))
                        {
                            let it = Item { dot: parent.dot + 1, ..parent };
                            if seen[k].insert(it) {
                                sets[k].push(it);
                            }
                        }
                        if origin != k {
                            // sets[origin] is frozen once k > origin; a plain
                            // loop suffices but we keep the same structure.
                        }
                    }
                }
            }
        }
        sets
    }

    /// Decides membership of `input` in the grammar's language.
    pub fn accepts(&self, input: &[u8]) -> bool {
        let sets = self.chart(input);
        let n = input.len();
        let start = self.grammar.start();
        sets[n]
            .iter()
            .any(|it| it.nt == start.0 && it.origin == 0 && it.dot as usize == self.rhs(it).len())
    }

    /// Parses `input`, returning one (arbitrary but deterministic) parse
    /// tree, or `None` if the input is not in the language.
    pub fn parse(&self, input: &[u8]) -> Option<ParseTree> {
        let sets = self.chart(input);
        let n = input.len();
        let start = self.grammar.start();
        let accepted = sets[n]
            .iter()
            .any(|it| it.nt == start.0 && it.origin == 0 && it.dot as usize == self.rhs(it).len());
        if !accepted {
            return None;
        }

        // completed[(nt, start)] = ascending list of end positions.
        let mut completed: HashMap<(u32, u32), Vec<u32>> = HashMap::new();
        for (k, set) in sets.iter().enumerate() {
            for it in set {
                if it.dot as usize == self.rhs(it).len() {
                    completed.entry((it.nt, it.origin)).or_default().push(k as u32);
                }
            }
        }
        for ends in completed.values_mut() {
            ends.sort_unstable();
            ends.dedup();
        }

        let mut builder = TreeBuilder {
            earley: self,
            input,
            completed,
            fail: HashSet::new(),
            in_progress: HashSet::new(),
        };
        builder.build(start.0, 0, n as u32)
    }
}

struct TreeBuilder<'a, 'g> {
    earley: &'a Earley<'g>,
    input: &'a [u8],
    completed: HashMap<(u32, u32), Vec<u32>>,
    fail: HashSet<(u32, u32, u32)>,
    in_progress: HashSet<(u32, u32, u32)>,
}

impl TreeBuilder<'_, '_> {
    fn spans(&self, nt: u32, start: u32) -> &[u32] {
        self.completed.get(&(nt, start)).map(Vec::as_slice).unwrap_or(&[])
    }

    fn build(&mut self, nt: u32, start: u32, end: u32) -> Option<ParseTree> {
        let key = (nt, start, end);
        if self.fail.contains(&key) || !self.spans(nt, start).contains(&end) {
            return None;
        }
        // A minimal derivation never revisits the same (nt, span); blocking
        // re-entry keeps unary/ε cycles from looping forever.
        if !self.in_progress.insert(key) {
            return None;
        }
        let prods = self.earley.grammar.productions(NtId(nt));
        let mut result = None;
        for (pi, rhs) in prods.iter().enumerate() {
            if let Some(children) = self.match_seq(rhs, 0, start, end) {
                result = Some(ParseTree::Node {
                    nt: NtId(nt),
                    prod: pi,
                    children,
                    start: start as usize,
                    end: end as usize,
                });
                break;
            }
        }
        self.in_progress.remove(&key);
        if result.is_none() {
            self.fail.insert(key);
        }
        result
    }

    fn match_seq(&mut self, rhs: &[Sym], k: usize, pos: u32, end: u32) -> Option<Vec<ParseTree>> {
        if k == rhs.len() {
            return (pos == end).then(Vec::new);
        }
        match rhs[k] {
            Sym::Class(c) => {
                if pos < end && c.contains(self.input[pos as usize]) {
                    let mut rest = self.match_seq(rhs, k + 1, pos + 1, end)?;
                    rest.insert(
                        0,
                        ParseTree::Leaf { byte: self.input[pos as usize], pos: pos as usize },
                    );
                    Some(rest)
                } else {
                    None
                }
            }
            Sym::Nt(n) => {
                let mids: Vec<u32> =
                    self.spans(n.0, pos).iter().copied().filter(|&m| m <= end).collect();
                for mid in mids {
                    if let Some(rest) = self.match_seq(rhs, k + 1, mid, end) {
                        if let Some(sub) = self.build(n.0, pos, mid) {
                            let mut children = Vec::with_capacity(rest.len() + 1);
                            children.push(sub);
                            children.extend(rest);
                            return Some(children);
                        }
                    }
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{cls, lit, nt, GrammarBuilder};
    use crate::CharClass;

    fn nested_tags() -> Grammar {
        let mut b = GrammarBuilder::new();
        let a = b.nt("A");
        b.prod(a, [lit(b"<a>"), nt(a), lit(b"</a>")].concat());
        b.prod(a, vec![]);
        b.build(a).unwrap()
    }

    /// The paper's synthesized running-example grammar:
    /// A → ε | A B ;  B → <a> A </a> | h | i   (equivalent to (<a>A</a> + h + i)*)
    fn running_example() -> Grammar {
        let mut b = GrammarBuilder::new();
        let a = b.nt("A");
        let t = b.nt("B");
        b.prod(a, vec![]);
        b.prod(a, [nt(a), nt(t)].concat());
        b.prod(t, [lit(b"<a>"), nt(a), lit(b"</a>")].concat());
        b.prod(t, lit(b"h"));
        b.prod(t, lit(b"i"));
        b.build(a).unwrap()
    }

    #[test]
    fn accepts_nested_tags() {
        let g = nested_tags();
        let p = Earley::new(&g);
        assert!(p.accepts(b""));
        assert!(p.accepts(b"<a></a>"));
        assert!(p.accepts(b"<a><a><a></a></a></a>"));
        assert!(!p.accepts(b"<a>"));
        assert!(!p.accepts(b"<a></a><a></a>")); // not a single nest
    }

    #[test]
    fn accepts_left_recursive_star_expansion() {
        let g = running_example();
        let p = Earley::new(&g);
        assert!(p.accepts(b""));
        assert!(p.accepts(b"hi"));
        assert!(p.accepts(b"<a>hi</a>"));
        assert!(p.accepts(b"<a><a>h</a>i</a>hh"));
        assert!(!p.accepts(b"<a>hi</a"));
        assert!(!p.accepts(b"x"));
    }

    #[test]
    fn rejects_byte_outside_class() {
        let mut b = GrammarBuilder::new();
        let a = b.nt("A");
        b.prod(a, cls(CharClass::range(b'0', b'9')));
        let g = b.build(a).unwrap();
        let p = Earley::new(&g);
        assert!(p.accepts(b"7"));
        assert!(!p.accepts(b"a"));
        assert!(!p.accepts(b""));
        assert!(!p.accepts(b"77"));
    }

    #[test]
    fn parse_tree_yield_equals_input() {
        let g = running_example();
        let p = Earley::new(&g);
        let input = b"<a><a>h</a>i</a>hh";
        let tree = p.parse(input).expect("member");
        assert_eq!(tree.to_bytes(), input.to_vec());
        let (s, e) = tree.span();
        assert_eq!((s, e), (0, input.len()));
    }

    #[test]
    fn parse_rejects_nonmember() {
        let g = running_example();
        let p = Earley::new(&g);
        assert!(p.parse(b"<a>").is_none());
        assert!(p.parse(b"z").is_none());
    }

    #[test]
    fn parse_of_empty_input_with_nullable_start() {
        let g = running_example();
        let p = Earley::new(&g);
        let tree = p.parse(b"").expect("ε is a member");
        assert_eq!(tree.to_bytes(), Vec::<u8>::new());
    }

    #[test]
    fn parse_tree_nodes_enumerates_nonterminals() {
        let g = running_example();
        let p = Earley::new(&g);
        let tree = p.parse(b"<a>h</a>").expect("member");
        let nodes = tree.nodes();
        // At least: root A, inner A (for "h"), B (tag), B (h), plus the
        // left-recursion spine nodes.
        assert!(nodes.len() >= 4, "got {} nodes", nodes.len());
        for n in nodes {
            let (s, e) = n.span();
            assert!(s <= e && e <= 8);
        }
    }

    #[test]
    fn handles_unary_cycles() {
        // A → B | x ; B → A. Unary cycle must not hang.
        let mut b = GrammarBuilder::new();
        let a = b.nt("A");
        let bb = b.nt("B");
        b.prod(a, nt(bb));
        b.prod(a, lit(b"x"));
        b.prod(bb, nt(a));
        let g = b.build(a).unwrap();
        let p = Earley::new(&g);
        assert!(p.accepts(b"x"));
        assert!(!p.accepts(b"y"));
        let tree = p.parse(b"x").expect("member");
        assert_eq!(tree.to_bytes(), b"x".to_vec());
    }

    #[test]
    fn handles_ambiguity() {
        // S → S S | 'a' | ε : highly ambiguous.
        let mut b = GrammarBuilder::new();
        let s = b.nt("S");
        b.prod(s, [nt(s), nt(s)].concat());
        b.prod(s, lit(b"a"));
        b.prod(s, vec![]);
        let g = b.build(s).unwrap();
        let p = Earley::new(&g);
        for n in 0..8 {
            let input = b"a".repeat(n);
            assert!(p.accepts(&input), "n={n}");
            let t = p.parse(&input).expect("member");
            assert_eq!(t.to_bytes(), input);
        }
        assert!(!p.accepts(b"b"));
    }

    #[test]
    fn matching_parentheses_with_regular_decoration() {
        // Generalized matching parentheses (Definition 5.2):
        // S → ( R (S)* R' )* with R = "(", R' = ")".
        let mut b = GrammarBuilder::new();
        let s = b.nt("S");
        let item = b.nt("I");
        b.prod(s, vec![]);
        b.prod(s, [nt(s), nt(item)].concat());
        b.prod(item, [lit(b"("), nt(s), lit(b")")].concat());
        let g = b.build(s).unwrap();
        let p = Earley::new(&g);
        assert!(p.accepts(b"()(())"));
        assert!(p.accepts(b"((()))()"));
        assert!(!p.accepts(b"(()"));
        assert!(!p.accepts(b")("));
    }
}
