//! Random sampling of grammar members (Section 8.1 of the paper).
//!
//! The paper converts a CFG into a probabilistic CFG by attaching a uniform
//! distribution over each nonterminal's productions, then samples top-down.
//! Naive uniform sampling of a recursive grammar diverges with positive
//! probability (the expected derivation size can be infinite), so this
//! implementation refines the scheme with a depth budget: each nonterminal's
//! minimum derivation depth is precomputed, and at every expansion the
//! sampler chooses uniformly *among the productions that can still terminate
//! within the remaining budget*. With an adequate budget this is exactly the
//! paper's uniform scheme except near the depth boundary.

use crate::cfg::{Grammar, NtId, Sym};
use rand::Rng;

/// Default depth budget used by [`Sampler::sample`].
pub const DEFAULT_MAX_DEPTH: usize = 32;

/// A reusable random sampler for a borrowed [`Grammar`].
///
/// # Examples
///
/// ```
/// use glade_grammar::cfg::{GrammarBuilder, lit, nt};
/// use glade_grammar::{Earley, Sampler};
/// use rand::SeedableRng;
///
/// let mut b = GrammarBuilder::new();
/// let a = b.nt("A");
/// b.prod(a, [lit(b"<a>"), nt(a), lit(b"</a>")].concat());
/// b.prod(a, vec![]);
/// let g = b.build(a).unwrap();
///
/// let sampler = Sampler::new(&g);
/// let parser = Earley::new(&g);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// for _ in 0..50 {
///     let s = sampler.sample(&mut rng).unwrap();
///     assert!(parser.accepts(&s));
/// }
/// ```
#[derive(Debug)]
pub struct Sampler<'g> {
    grammar: &'g Grammar,
    /// Minimum derivation depth per nonterminal (`None` = non-productive).
    min_depth: Vec<Option<usize>>,
    max_depth: usize,
}

impl<'g> Sampler<'g> {
    /// Creates a sampler with the default depth budget.
    pub fn new(grammar: &'g Grammar) -> Self {
        Self::with_max_depth(grammar, DEFAULT_MAX_DEPTH)
    }

    /// Creates a sampler with an explicit depth budget.
    ///
    /// Larger budgets produce longer, more deeply nested samples.
    pub fn with_max_depth(grammar: &'g Grammar, max_depth: usize) -> Self {
        Sampler { grammar, min_depth: grammar.min_depths(), max_depth }
    }

    /// The underlying grammar.
    pub fn grammar(&self) -> &'g Grammar {
        self.grammar
    }

    /// Samples a random member of the grammar's language.
    ///
    /// Returns `None` if the start symbol is non-productive (derives no
    /// finite string).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<Vec<u8>> {
        self.sample_nt(self.grammar.start(), rng)
    }

    /// Samples a random string derivable from nonterminal `nt`.
    ///
    /// This is the distribution `P_{L(C,A)}` of Section 8.1, also used by the
    /// grammar-based fuzzer to resample subtrees.
    pub fn sample_nt<R: Rng + ?Sized>(&self, nt: NtId, rng: &mut R) -> Option<Vec<u8>> {
        let need = self.min_depth[nt.index()]?;
        let mut out = Vec::new();
        let budget = self.max_depth.max(need);
        self.expand(nt, budget, rng, &mut out)?;
        Some(out)
    }

    fn expand<R: Rng + ?Sized>(
        &self,
        nt: NtId,
        budget: usize,
        rng: &mut R,
        out: &mut Vec<u8>,
    ) -> Option<()> {
        let prods = self.grammar.productions(nt);
        // Productions whose every nonterminal can bottom out within the
        // remaining budget.
        let feasible: Vec<usize> = prods
            .iter()
            .enumerate()
            .filter(|(_, rhs)| self.prod_min_depth(rhs).is_some_and(|d| d < budget.max(1)))
            .map(|(i, _)| i)
            .collect();
        let chosen = if feasible.is_empty() {
            // Budget exhausted: fall back to the globally cheapest
            // production so sampling still terminates.
            (0..prods.len())
                .min_by_key(|&i| self.prod_min_depth(&prods[i]).unwrap_or(usize::MAX))?
        } else {
            feasible[rng.gen_range(0..feasible.len())]
        };
        for sym in &prods[chosen] {
            match sym {
                Sym::Class(c) => out.push(c.sample(rng)?),
                Sym::Nt(m) => self.expand(*m, budget.saturating_sub(1), rng, out)?,
            }
        }
        Some(())
    }

    /// Minimum derivation depth of a production body (max over nonterminals'
    /// minimum depths; 0 for all-terminal bodies). `None` if some
    /// nonterminal is non-productive.
    fn prod_min_depth(&self, rhs: &[Sym]) -> Option<usize> {
        let mut worst = 0usize;
        for sym in rhs {
            if let Sym::Nt(m) = sym {
                worst = worst.max(self.min_depth[m.index()]?);
            }
        }
        Some(worst)
    }

    /// Draws `n` samples, skipping `None`s (non-productive grammars yield an
    /// empty vector).
    pub fn sample_many<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Vec<u8>> {
        (0..n).filter_map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{cls, lit, nt, GrammarBuilder};
    use crate::{CharClass, Earley};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn running_example() -> Grammar {
        let mut b = GrammarBuilder::new();
        let a = b.nt("A");
        let t = b.nt("B");
        b.prod(a, vec![]);
        b.prod(a, [nt(a), nt(t)].concat());
        b.prod(t, [lit(b"<a>"), nt(a), lit(b"</a>")].concat());
        b.prod(t, cls(CharClass::range(b'a', b'z')));
        b.build(a).unwrap()
    }

    #[test]
    fn samples_are_grammar_members() {
        let g = running_example();
        let sampler = Sampler::new(&g);
        let parser = Earley::new(&g);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let s = sampler.sample(&mut rng).expect("productive");
            assert!(parser.accepts(&s), "sample {:?} rejected", String::from_utf8_lossy(&s));
        }
    }

    #[test]
    fn sampling_terminates_with_tiny_budget() {
        let g = running_example();
        let sampler = Sampler::with_max_depth(&g, 1);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let s = sampler.sample(&mut rng).expect("productive");
            // Depth 1 can only take the ε production.
            assert!(s.is_empty(), "expected ε, got {:?}", String::from_utf8_lossy(&s));
        }
    }

    #[test]
    fn sample_nt_draws_from_requested_nonterminal() {
        let g = running_example();
        let sampler = Sampler::new(&g);
        let mut rng = StdRng::seed_from_u64(5);
        // Nonterminal B (index 1) never derives ε.
        let b_id = g.nonterminals().nth(1).unwrap();
        for _ in 0..50 {
            let s = sampler.sample_nt(b_id, &mut rng).expect("productive");
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn nonproductive_nonterminal_yields_none() {
        let mut b = GrammarBuilder::new();
        let a = b.nt("A");
        let looping = b.nt("L");
        b.prod(a, lit(b"x"));
        b.prod(looping, nt(looping));
        let g = b.build(a).unwrap();
        let sampler = Sampler::new(&g);
        let mut rng = StdRng::seed_from_u64(0);
        let l_id = g.nonterminals().nth(1).unwrap();
        assert_eq!(sampler.sample_nt(l_id, &mut rng), None);
        // The start symbol is fine.
        assert_eq!(sampler.sample(&mut rng), Some(b"x".to_vec()));
    }

    #[test]
    fn larger_budget_reaches_deeper_derivations() {
        let g = running_example();
        let shallow = Sampler::with_max_depth(&g, 2);
        let deep = Sampler::with_max_depth(&g, 24);
        let mut rng = StdRng::seed_from_u64(11);
        let max_len = |s: &Sampler<'_>, rng: &mut StdRng| {
            (0..200).map(|_| s.sample(rng).unwrap().len()).max().unwrap()
        };
        let shallow_max = max_len(&shallow, &mut rng);
        let deep_max = max_len(&deep, &mut rng);
        assert!(deep_max > shallow_max, "deep {deep_max} vs shallow {shallow_max}");
    }

    #[test]
    fn sample_many_collects_n() {
        let g = running_example();
        let sampler = Sampler::new(&g);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(sampler.sample_many(25, &mut rng).len(), 25);
    }
}
