//! Context-free grammars over byte strings.
//!
//! The synthesized languages of GLADE's phase two (Section 5) are
//! context-free grammars whose terminals are byte classes (character
//! generalization widens literal bytes into classes). This module provides
//! the grammar representation shared by the synthesizer, the Earley parser,
//! the sampler, and the handwritten target-language grammars of the
//! evaluation (Section 8.2).

use crate::CharClass;
use std::fmt;

/// Identifier of a nonterminal within one [`Grammar`].
///
/// `NtId`s are only meaningful relative to the grammar that created them
/// (via [`GrammarBuilder::nt`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NtId(pub(crate) u32);

impl NtId {
    /// Index into the grammar's nonterminal tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// One symbol on the right-hand side of a production: either a terminal byte
/// class or a nonterminal reference.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Sym {
    /// A terminal: any single byte drawn from the class.
    Class(CharClass),
    /// A nonterminal reference.
    Nt(NtId),
}

impl Sym {
    /// A terminal matching exactly byte `b`.
    pub fn byte(b: u8) -> Sym {
        Sym::Class(CharClass::single(b))
    }

    /// Returns the terminal class, if this is a terminal.
    pub fn as_class(&self) -> Option<&CharClass> {
        match self {
            Sym::Class(c) => Some(c),
            Sym::Nt(_) => None,
        }
    }

    /// Returns the nonterminal id, if this is a nonterminal.
    pub fn as_nt(&self) -> Option<NtId> {
        match self {
            Sym::Nt(n) => Some(*n),
            Sym::Class(_) => None,
        }
    }
}

/// Builds a right-hand side from a literal byte string: one single-byte
/// terminal per byte.
///
/// # Examples
///
/// ```
/// use glade_grammar::cfg::lit;
/// assert_eq!(lit(b"ab").len(), 2);
/// ```
pub fn lit(bytes: &[u8]) -> Vec<Sym> {
    bytes.iter().map(|&b| Sym::byte(b)).collect()
}

/// Builds a one-symbol right-hand-side fragment referencing nonterminal `n`.
pub fn nt(n: NtId) -> Vec<Sym> {
    vec![Sym::Nt(n)]
}

/// Builds a one-symbol right-hand-side fragment from a byte class.
pub fn cls(c: CharClass) -> Vec<Sym> {
    vec![Sym::Class(c)]
}

/// Errors detected when finalizing a [`GrammarBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrammarError {
    /// A production references a nonterminal id from another grammar (index
    /// out of range).
    UnknownNonterminal(u32),
    /// A production contains a terminal with an empty byte class; such a
    /// symbol can never match and would silently make rules unusable.
    EmptyTerminalClass {
        /// Display name of the offending nonterminal.
        nonterminal: String,
    },
    /// A nonterminal has no productions at all; its language would be empty.
    NoProductions {
        /// Display name of the offending nonterminal.
        nonterminal: String,
    },
}

impl fmt::Display for GrammarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrammarError::UnknownNonterminal(i) => {
                write!(f, "production references unknown nonterminal N{i}")
            }
            GrammarError::EmptyTerminalClass { nonterminal } => {
                write!(f, "production of {nonterminal} contains an empty terminal class")
            }
            GrammarError::NoProductions { nonterminal } => {
                write!(f, "nonterminal {nonterminal} has no productions")
            }
        }
    }
}

impl std::error::Error for GrammarError {}

/// Incrementally constructs a [`Grammar`].
///
/// # Examples
///
/// ```
/// use glade_grammar::cfg::{GrammarBuilder, lit, nt};
///
/// // A → "<a>" A "</a>" | ε   (well-nested tags)
/// let mut b = GrammarBuilder::new();
/// let a = b.nt("A");
/// b.prod(a, [lit(b"<a>"), nt(a), lit(b"</a>")].concat());
/// b.prod(a, vec![]);
/// let g = b.build(a).unwrap();
/// assert_eq!(g.num_nonterminals(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GrammarBuilder {
    names: Vec<String>,
    prods: Vec<Vec<Vec<Sym>>>,
}

impl GrammarBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a fresh nonterminal with a human-readable `name` (used only
    /// for display).
    pub fn nt(&mut self, name: &str) -> NtId {
        let id = NtId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.prods.push(Vec::new());
        id
    }

    /// Adds the production `lhs → rhs`. An empty `rhs` is the ε-production.
    pub fn prod(&mut self, lhs: NtId, rhs: Vec<Sym>) {
        self.prods[lhs.index()].push(rhs);
    }

    /// Finalizes the grammar with `start` as the start symbol.
    ///
    /// # Errors
    ///
    /// Returns a [`GrammarError`] if a production references an undeclared
    /// nonterminal, contains an empty terminal class, or if some nonterminal
    /// has no productions.
    pub fn build(self, start: NtId) -> Result<Grammar, GrammarError> {
        let n = self.names.len() as u32;
        for (i, prods) in self.prods.iter().enumerate() {
            if prods.is_empty() {
                return Err(GrammarError::NoProductions { nonterminal: self.names[i].clone() });
            }
            for rhs in prods {
                for sym in rhs {
                    match sym {
                        Sym::Nt(NtId(j)) if *j >= n => {
                            return Err(GrammarError::UnknownNonterminal(*j));
                        }
                        Sym::Class(c) if c.is_empty() => {
                            return Err(GrammarError::EmptyTerminalClass {
                                nonterminal: self.names[i].clone(),
                            });
                        }
                        _ => {}
                    }
                }
            }
        }
        if start.0 >= n {
            return Err(GrammarError::UnknownNonterminal(start.0));
        }
        Ok(Grammar { start, names: self.names, prods: self.prods })
    }
}

/// An immutable context-free grammar over byte-class terminals.
///
/// Construct via [`GrammarBuilder`]. Use [`crate::Earley`] for membership and
/// parsing, [`crate::Sampler`] for random member generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grammar {
    start: NtId,
    names: Vec<String>,
    prods: Vec<Vec<Vec<Sym>>>,
}

impl Grammar {
    /// The start symbol.
    pub fn start(&self) -> NtId {
        self.start
    }

    /// Number of nonterminals.
    pub fn num_nonterminals(&self) -> usize {
        self.names.len()
    }

    /// Total number of productions.
    pub fn num_productions(&self) -> usize {
        self.prods.iter().map(Vec::len).sum()
    }

    /// Display name of nonterminal `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` belongs to a different grammar (index out of range).
    pub fn name(&self, n: NtId) -> &str {
        &self.names[n.index()]
    }

    /// The productions of nonterminal `n`.
    pub fn productions(&self, n: NtId) -> &[Vec<Sym>] {
        &self.prods[n.index()]
    }

    /// Iterates over all nonterminal ids.
    pub fn nonterminals(&self) -> impl Iterator<Item = NtId> + '_ {
        (0..self.names.len() as u32).map(NtId)
    }

    /// Computes the set of nullable nonterminals (those deriving ε) as a
    /// boolean table indexed by [`NtId::index`].
    pub fn nullable_set(&self) -> Vec<bool> {
        let mut nullable = vec![false; self.names.len()];
        let mut changed = true;
        while changed {
            changed = false;
            for (i, prods) in self.prods.iter().enumerate() {
                if nullable[i] {
                    continue;
                }
                let derives_eps = prods.iter().any(|rhs| {
                    rhs.iter().all(|s| match s {
                        Sym::Class(_) => false,
                        Sym::Nt(n) => nullable[n.index()],
                    })
                });
                if derives_eps {
                    nullable[i] = true;
                    changed = true;
                }
            }
        }
        nullable
    }

    /// Computes, for each nonterminal, the minimum derivation-tree depth of
    /// any string it derives (`None` if it derives no finite string, i.e. is
    /// non-productive).
    ///
    /// A production with only terminals has depth 1.
    pub fn min_depths(&self) -> Vec<Option<usize>> {
        let n = self.names.len();
        let mut depth: Vec<Option<usize>> = vec![None; n];
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                let mut best: Option<usize> = depth[i];
                for rhs in &self.prods[i] {
                    let mut worst = 0usize;
                    let mut feasible = true;
                    for s in rhs {
                        match s {
                            Sym::Class(_) => {}
                            Sym::Nt(m) => match depth[m.index()] {
                                Some(d) => worst = worst.max(d),
                                None => {
                                    feasible = false;
                                    break;
                                }
                            },
                        }
                    }
                    if feasible {
                        let cand = worst + 1;
                        if best.is_none_or(|b| cand < b) {
                            best = Some(cand);
                        }
                    }
                }
                if best != depth[i] {
                    depth[i] = best;
                    changed = true;
                }
            }
        }
        depth
    }

    /// Returns whether every nonterminal reachable from the start symbol is
    /// productive (derives at least one finite string).
    pub fn is_productive(&self) -> bool {
        let depths = self.min_depths();
        let mut reachable = vec![false; self.names.len()];
        let mut stack = vec![self.start];
        reachable[self.start.index()] = true;
        while let Some(n) = stack.pop() {
            for rhs in self.productions(n) {
                for s in rhs {
                    if let Sym::Nt(m) = s {
                        if !reachable[m.index()] {
                            reachable[m.index()] = true;
                            stack.push(*m);
                        }
                    }
                }
            }
        }
        reachable.iter().enumerate().all(|(i, &r)| !r || depths[i].is_some())
    }
}

impl fmt::Display for Grammar {
    /// Renders one line per nonterminal: `A → rhs₁ | rhs₂ | …` with `ε` for
    /// empty right-hand sides and the start symbol listed first.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut order: Vec<usize> = (0..self.names.len()).collect();
        let s = self.start.index();
        order.retain(|&i| i != s);
        order.insert(0, s);
        for i in order {
            write!(f, "{} →", self.names[i])?;
            for (k, rhs) in self.prods[i].iter().enumerate() {
                if k > 0 {
                    write!(f, " |")?;
                }
                if rhs.is_empty() {
                    write!(f, " ε")?;
                } else {
                    write!(f, " ")?;
                    for sym in rhs {
                        match sym {
                            Sym::Class(c) => write!(f, "{c}")?,
                            Sym::Nt(n) => write!(f, "⟨{}⟩", self.names[n.index()])?,
                        }
                    }
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nested_tags() -> Grammar {
        let mut b = GrammarBuilder::new();
        let a = b.nt("A");
        b.prod(a, [lit(b"<a>"), nt(a), lit(b"</a>")].concat());
        b.prod(a, vec![]);
        b.build(a).expect("valid grammar")
    }

    #[test]
    fn builder_produces_expected_shape() {
        let g = nested_tags();
        assert_eq!(g.num_nonterminals(), 1);
        assert_eq!(g.num_productions(), 2);
        assert_eq!(g.productions(g.start()).len(), 2);
        assert_eq!(g.name(g.start()), "A");
    }

    #[test]
    fn build_rejects_missing_productions() {
        let mut b = GrammarBuilder::new();
        let a = b.nt("A");
        let _orphan = b.nt("B");
        b.prod(a, vec![]);
        let err = b.build(a).unwrap_err();
        assert_eq!(err, GrammarError::NoProductions { nonterminal: "B".into() });
    }

    #[test]
    fn build_rejects_empty_terminal_class() {
        let mut b = GrammarBuilder::new();
        let a = b.nt("A");
        b.prod(a, vec![Sym::Class(CharClass::EMPTY)]);
        let err = b.build(a).unwrap_err();
        assert!(matches!(err, GrammarError::EmptyTerminalClass { .. }));
    }

    #[test]
    fn nullable_set_fixpoint() {
        let mut b = GrammarBuilder::new();
        let a = b.nt("A");
        let c = b.nt("C");
        let d = b.nt("D");
        // A → C D ; C → ε ; D → ε | 'x'
        b.prod(a, [nt(c), nt(d)].concat());
        b.prod(c, vec![]);
        b.prod(d, vec![]);
        b.prod(d, lit(b"x"));
        let g = b.build(a).unwrap();
        assert_eq!(g.nullable_set(), vec![true, true, true]);
    }

    #[test]
    fn nullable_set_without_epsilon() {
        let g = {
            let mut b = GrammarBuilder::new();
            let a = b.nt("A");
            b.prod(a, lit(b"x"));
            b.build(a).unwrap()
        };
        assert_eq!(g.nullable_set(), vec![false]);
    }

    #[test]
    fn min_depths_on_recursive_grammar() {
        let g = nested_tags();
        // A → ε has depth 1.
        assert_eq!(g.min_depths(), vec![Some(1)]);
    }

    #[test]
    fn min_depths_detects_nonproductive() {
        let mut b = GrammarBuilder::new();
        let a = b.nt("A");
        // A → A only: non-productive.
        b.prod(a, nt(a));
        let g = b.build(a).unwrap();
        assert_eq!(g.min_depths(), vec![None]);
        assert!(!g.is_productive());
    }

    #[test]
    fn productive_grammar_is_detected() {
        assert!(nested_tags().is_productive());
    }

    #[test]
    fn display_shows_epsilon_and_nesting() {
        let g = nested_tags();
        let s = g.to_string();
        assert!(s.contains("A →"), "{s}");
        assert!(s.contains('ε'), "{s}");
        assert!(s.contains("⟨A⟩"), "{s}");
    }

    #[test]
    fn lit_helper_builds_single_byte_terminals() {
        let rhs = lit(b"ab");
        assert_eq!(rhs[0].as_class().unwrap().first(), Some(b'a'));
        assert_eq!(rhs[1].as_class().unwrap().first(), Some(b'b'));
        assert!(rhs[0].as_nt().is_none());
    }
}
