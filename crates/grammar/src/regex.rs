//! Regular expressions over byte strings.
//!
//! Phase one of GLADE (Section 4) synthesizes a regular expression, so the
//! library needs a regex representation with (a) the constructs the
//! meta-grammar `C_regex` produces — literals, alternation `+`, and Kleene
//! star `*` — plus byte classes produced by character generalization, and
//! (b) an exact membership test. Matching is implemented with Brzozowski
//! derivatives over smart-normalized terms, which is simple, allocation-only
//! (no unsafe), and fast enough for the check construction and evaluation
//! workloads in the paper.

use crate::CharClass;
use std::fmt;

/// A regular expression over bytes.
///
/// Values are kept in a light normal form by the smart constructors
/// ([`Regex::concat`], [`Regex::alt`], [`Regex::star`], ...): concatenations
/// and alternations are flattened and never contain the identity element,
/// alternations are sorted and deduplicated, and `∅`/`ε` absorb as expected.
/// This keeps derivative-based matching (see [`Regex::is_match`]) from
/// blowing up syntactically.
///
/// # Examples
///
/// ```
/// use glade_grammar::Regex;
///
/// // (<a>(h+i)*</a>)* — the grammar synthesized for the paper's running example.
/// let hi = Regex::alt(vec![Regex::lit(b"h"), Regex::lit(b"i")]);
/// let tag = Regex::concat(vec![Regex::lit(b"<a>"), Regex::star(hi), Regex::lit(b"</a>")]);
/// let xml = Regex::star(tag);
/// assert!(xml.is_match(b"<a>hi</a><a>ih</a>"));
/// assert!(!xml.is_match(b"<a>hi</a"));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Regex {
    /// The empty language `∅`.
    Empty,
    /// The language containing only the empty string.
    Epsilon,
    /// A single byte drawn from a class.
    Class(CharClass),
    /// Concatenation of two or more factors (never contains `Epsilon` or
    /// `Empty`, never nested).
    Concat(Vec<Regex>),
    /// Alternation of two or more branches (sorted, deduplicated, never
    /// contains `Empty`, never nested).
    Alt(Vec<Regex>),
    /// Kleene star.
    Star(Box<Regex>),
}

impl Regex {
    /// A literal byte string. The empty string yields `Epsilon`.
    pub fn lit(bytes: &[u8]) -> Regex {
        Regex::concat(bytes.iter().map(|&b| Regex::Class(CharClass::single(b))).collect())
    }

    /// A single byte from `class`. An empty class yields `Empty`.
    pub fn class(class: CharClass) -> Regex {
        if class.is_empty() {
            Regex::Empty
        } else {
            Regex::Class(class)
        }
    }

    /// Smart concatenation: flattens nested concats, drops `ε`, and absorbs
    /// `∅`.
    pub fn concat(parts: Vec<Regex>) -> Regex {
        let mut out = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Regex::Epsilon => {}
                Regex::Empty => return Regex::Empty,
                Regex::Concat(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Regex::Epsilon,
            1 => out.pop().expect("len 1"),
            _ => Regex::Concat(out),
        }
    }

    /// Smart alternation: flattens nested alts, drops `∅`, sorts and
    /// deduplicates branches, and merges single-byte classes.
    pub fn alt(parts: Vec<Regex>) -> Regex {
        let mut out: Vec<Regex> = Vec::with_capacity(parts.len());
        let mut class_acc: Option<CharClass> = None;
        let mut stack: Vec<Regex> = parts;
        stack.reverse();
        while let Some(p) = stack.pop() {
            match p {
                Regex::Empty => {}
                Regex::Alt(inner) => {
                    for r in inner.into_iter().rev() {
                        stack.push(r);
                    }
                }
                Regex::Class(c) => {
                    class_acc = Some(match class_acc {
                        Some(acc) => acc.union(&c),
                        None => c,
                    });
                }
                other => out.push(other),
            }
        }
        if let Some(c) = class_acc {
            out.push(Regex::Class(c));
        }
        out.sort();
        out.dedup();
        match out.len() {
            0 => Regex::Empty,
            1 => out.pop().expect("len 1"),
            _ => Regex::Alt(out),
        }
    }

    /// Smart Kleene star: `∅* = ε* = ε`, `(r*)* = r*`.
    pub fn star(inner: Regex) -> Regex {
        match inner {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            s @ Regex::Star(_) => s,
            other => Regex::Star(Box::new(other)),
        }
    }

    /// `r+` sugar: `r r*`.
    pub fn plus(inner: Regex) -> Regex {
        Regex::concat(vec![inner.clone(), Regex::star(inner)])
    }

    /// `r?` sugar: `ε + r`.
    pub fn opt(inner: Regex) -> Regex {
        Regex::alt(vec![Regex::Epsilon, inner])
    }

    /// Returns whether the language contains the empty string.
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Class(_) => false,
            Regex::Epsilon | Regex::Star(_) => true,
            Regex::Concat(parts) => parts.iter().all(Regex::nullable),
            Regex::Alt(parts) => parts.iter().any(Regex::nullable),
        }
    }

    /// Returns whether the language is empty (matches no string at all).
    ///
    /// Thanks to the smart constructors, `∅` only ever appears as the
    /// top-level `Empty` term.
    pub fn is_empty_language(&self) -> bool {
        matches!(self, Regex::Empty)
    }

    /// The Brzozowski derivative with respect to byte `b`: a regex matching
    /// `{ w | b·w ∈ L(self) }`.
    pub fn derivative(&self, b: u8) -> Regex {
        match self {
            Regex::Empty | Regex::Epsilon => Regex::Empty,
            Regex::Class(c) => {
                if c.contains(b) {
                    Regex::Epsilon
                } else {
                    Regex::Empty
                }
            }
            Regex::Concat(parts) => {
                // d(r1 r2 .. rn) = d(r1) r2..rn  (+ d(r2..rn) if r1 nullable, etc.)
                let mut branches = Vec::new();
                for (i, part) in parts.iter().enumerate() {
                    let mut seq = vec![part.derivative(b)];
                    seq.extend(parts[i + 1..].iter().cloned());
                    branches.push(Regex::concat(seq));
                    if !part.nullable() {
                        break;
                    }
                }
                Regex::alt(branches)
            }
            Regex::Alt(parts) => Regex::alt(parts.iter().map(|p| p.derivative(b)).collect()),
            Regex::Star(inner) => {
                Regex::concat(vec![inner.derivative(b), Regex::Star(inner.clone())])
            }
        }
    }

    /// Exact membership test by folding derivatives over `input`.
    ///
    /// # Examples
    ///
    /// ```
    /// use glade_grammar::Regex;
    /// let r = Regex::star(Regex::lit(b"ab"));
    /// assert!(r.is_match(b""));
    /// assert!(r.is_match(b"abab"));
    /// assert!(!r.is_match(b"aba"));
    /// ```
    pub fn is_match(&self, input: &[u8]) -> bool {
        let mut cur = self.clone();
        for &b in input {
            cur = cur.derivative(b);
            if cur.is_empty_language() {
                return false;
            }
        }
        cur.nullable()
    }

    /// Number of AST nodes; a rough complexity measure used in tests and
    /// statistics.
    pub fn size(&self) -> usize {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Class(_) => 1,
            Regex::Concat(parts) | Regex::Alt(parts) => {
                1 + parts.iter().map(Regex::size).sum::<usize>()
            }
            Regex::Star(inner) => 1 + inner.size(),
        }
    }

    /// Samples a random member string.
    ///
    /// Stars draw a repetition count uniformly from `0..=max_rep`; alternation
    /// branches are chosen uniformly. Returns `None` for the empty language.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R, max_rep: usize) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        self.sample_into(rng, max_rep, &mut out)?;
        Some(out)
    }

    fn sample_into<R: rand::Rng + ?Sized>(
        &self,
        rng: &mut R,
        max_rep: usize,
        out: &mut Vec<u8>,
    ) -> Option<()> {
        match self {
            Regex::Empty => None,
            Regex::Epsilon => Some(()),
            Regex::Class(c) => {
                out.push(c.sample(rng)?);
                Some(())
            }
            Regex::Concat(parts) => {
                for p in parts {
                    p.sample_into(rng, max_rep, out)?;
                }
                Some(())
            }
            Regex::Alt(parts) => {
                let k = rng.gen_range(0..parts.len());
                parts[k].sample_into(rng, max_rep, out)
            }
            Regex::Star(inner) => {
                let n = rng.gen_range(0..=max_rep);
                for _ in 0..n {
                    // A star body with an empty language just contributes ε.
                    if inner.sample_into(rng, max_rep, out).is_none() {
                        return Some(());
                    }
                }
                Some(())
            }
        }
    }
}

impl fmt::Display for Regex {
    /// Renders in the paper's notation: `+` for alternation, `*` for
    /// repetition, parentheses as needed.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn needs_parens_in_concat(r: &Regex) -> bool {
            matches!(r, Regex::Alt(_))
        }
        fn go(r: &Regex, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match r {
                Regex::Empty => write!(f, "∅"),
                Regex::Epsilon => write!(f, "ε"),
                Regex::Class(c) => write!(f, "{c}"),
                Regex::Concat(parts) => {
                    for p in parts {
                        if needs_parens_in_concat(p) {
                            write!(f, "(")?;
                            go(p, f)?;
                            write!(f, ")")?;
                        } else {
                            go(p, f)?;
                        }
                    }
                    Ok(())
                }
                Regex::Alt(parts) => {
                    for (i, p) in parts.iter().enumerate() {
                        if i > 0 {
                            write!(f, " + ")?;
                        }
                        go(p, f)?;
                    }
                    Ok(())
                }
                Regex::Star(inner) => {
                    match inner.as_ref() {
                        Regex::Class(c) => write!(f, "{c}")?,
                        other => {
                            write!(f, "(")?;
                            go(other, f)?;
                            write!(f, ")")?;
                        }
                    }
                    write!(f, "*")
                }
            }
        }
        go(self, f)
    }
}

impl fmt::Debug for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Regex({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lit_matches_exactly_itself() {
        let r = Regex::lit(b"abc");
        assert!(r.is_match(b"abc"));
        assert!(!r.is_match(b"ab"));
        assert!(!r.is_match(b"abcd"));
        assert!(!r.is_match(b""));
    }

    #[test]
    fn empty_lit_is_epsilon() {
        assert_eq!(Regex::lit(b""), Regex::Epsilon);
        assert!(Regex::lit(b"").is_match(b""));
    }

    #[test]
    fn star_matches_repetitions() {
        let r = Regex::star(Regex::lit(b"ab"));
        for n in 0..5 {
            let s = b"ab".repeat(n);
            assert!(r.is_match(&s), "n={n}");
        }
        assert!(!r.is_match(b"a"));
        assert!(!r.is_match(b"aab"));
    }

    #[test]
    fn alt_matches_either_branch() {
        let r = Regex::alt(vec![Regex::lit(b"cat"), Regex::lit(b"dog")]);
        assert!(r.is_match(b"cat"));
        assert!(r.is_match(b"dog"));
        assert!(!r.is_match(b"catdog"));
    }

    #[test]
    fn running_example_regex() {
        // (<a>(h+i)*</a>)* from Figure 2, step R9.
        let hi = Regex::alt(vec![Regex::lit(b"h"), Regex::lit(b"i")]);
        let tag = Regex::concat(vec![Regex::lit(b"<a>"), Regex::star(hi), Regex::lit(b"</a>")]);
        let xml = Regex::star(tag);
        assert!(xml.is_match(b""));
        assert!(xml.is_match(b"<a>hi</a>"));
        assert!(xml.is_match(b"<a></a>"));
        assert!(xml.is_match(b"<a>hihi</a><a>i</a>"));
        assert!(!xml.is_match(b"<a>hi</a"));
        assert!(!xml.is_match(b"<a>x</a>"));
    }

    #[test]
    fn smart_constructors_normalize() {
        // Concats flatten and drop epsilon.
        let c = Regex::concat(vec![
            Regex::Epsilon,
            Regex::concat(vec![Regex::lit(b"a"), Regex::lit(b"b")]),
            Regex::Epsilon,
        ]);
        assert_eq!(c, Regex::lit(b"ab"));
        // Empty absorbs concat.
        assert_eq!(Regex::concat(vec![Regex::lit(b"a"), Regex::Empty]), Regex::Empty);
        // Alt drops empty and dedups.
        let a = Regex::alt(vec![Regex::Empty, Regex::lit(b"xy"), Regex::lit(b"xy")]);
        assert_eq!(a, Regex::lit(b"xy"));
        // Single-byte alternations merge into one class.
        let merged = Regex::alt(vec![Regex::lit(b"a"), Regex::lit(b"b")]);
        assert_eq!(merged, Regex::Class(CharClass::from_bytes(b"ab")));
        // Star normalization.
        assert_eq!(Regex::star(Regex::Empty), Regex::Epsilon);
        assert_eq!(Regex::star(Regex::Epsilon), Regex::Epsilon);
        let s = Regex::star(Regex::lit(b"ab"));
        assert_eq!(Regex::star(s.clone()), s);
    }

    #[test]
    fn nullable_is_accurate() {
        assert!(!Regex::lit(b"a").nullable());
        assert!(Regex::star(Regex::lit(b"a")).nullable());
        assert!(Regex::opt(Regex::lit(b"a")).nullable());
        assert!(!Regex::plus(Regex::lit(b"a")).nullable());
        assert!(Regex::Epsilon.nullable());
        assert!(!Regex::Empty.nullable());
    }

    #[test]
    fn plus_requires_at_least_one() {
        let r = Regex::plus(Regex::lit(b"x"));
        assert!(!r.is_match(b""));
        assert!(r.is_match(b"x"));
        assert!(r.is_match(b"xxx"));
    }

    #[test]
    fn opt_allows_empty() {
        let r = Regex::opt(Regex::lit(b"x"));
        assert!(r.is_match(b""));
        assert!(r.is_match(b"x"));
        assert!(!r.is_match(b"xx"));
    }

    #[test]
    fn class_matches_any_member() {
        let r = Regex::class(CharClass::range(b'0', b'9'));
        assert!(r.is_match(b"5"));
        assert!(!r.is_match(b"a"));
        assert!(!r.is_match(b"55"));
        assert_eq!(Regex::class(CharClass::EMPTY), Regex::Empty);
    }

    #[test]
    fn samples_are_members() {
        let hi = Regex::alt(vec![Regex::lit(b"h"), Regex::lit(b"i")]);
        let xml = Regex::star(Regex::concat(vec![
            Regex::lit(b"<a>"),
            Regex::star(hi),
            Regex::lit(b"</a>"),
        ]));
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let s = xml.sample(&mut rng, 3).expect("nonempty language");
            assert!(xml.is_match(&s), "sample {:?} not matched", String::from_utf8_lossy(&s));
        }
    }

    #[test]
    fn sample_of_empty_language_is_none() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert_eq!(Regex::Empty.sample(&mut rng, 3), None);
        assert_eq!(Regex::concat(vec![Regex::lit(b"a"), Regex::Empty]).sample(&mut rng, 3), None);
    }

    #[test]
    fn display_roundtrip_notation() {
        let hi = Regex::alt(vec![Regex::lit(b"h"), Regex::lit(b"i")]);
        let xml = Regex::star(Regex::concat(vec![
            Regex::lit(b"<a>"),
            Regex::star(hi),
            Regex::lit(b"</a>"),
        ]));
        // (h+i) merges into the class [hi]; rendered with its star.
        assert_eq!(xml.to_string(), "(<a>[hi]*</a>)*");
    }

    #[test]
    fn derivative_of_class() {
        let r = Regex::class(CharClass::from_bytes(b"ab"));
        assert_eq!(r.derivative(b'a'), Regex::Epsilon);
        assert_eq!(r.derivative(b'c'), Regex::Empty);
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(Regex::Epsilon.size(), 1);
        assert!(Regex::lit(b"abc").size() >= 4);
    }
}
