//! Sets of bytes, used as the terminal alphabet of regular expressions and
//! context-free grammars.
//!
//! GLADE operates on byte strings (program inputs are treated as sequences of
//! ASCII bytes, Section 2 of the paper), so a terminal position in a
//! synthesized language is a *set of bytes*: character generalization
//! (Section 6.2) widens a single literal byte into the set of bytes the
//! membership oracle accepts at that position.

use std::fmt;

/// A set of bytes represented as a 256-bit bitmap.
///
/// `CharClass` is the leaf alphabet unit shared by [`crate::Regex`] and
/// [`crate::Grammar`]. It supports the usual set algebra and cheap uniform
/// sampling.
///
/// # Examples
///
/// ```
/// use glade_grammar::CharClass;
///
/// let lower = CharClass::range(b'a', b'z');
/// assert!(lower.contains(b'q'));
/// assert!(!lower.contains(b'Q'));
/// assert_eq!(lower.len(), 26);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct CharClass {
    bits: [u64; 4],
}

impl CharClass {
    /// The empty set of bytes.
    pub const EMPTY: CharClass = CharClass { bits: [0; 4] };

    /// Creates an empty class.
    pub fn new() -> Self {
        Self::EMPTY
    }

    /// Creates the class containing every byte value.
    pub fn full() -> Self {
        CharClass { bits: [u64::MAX; 4] }
    }

    /// Creates the class containing exactly one byte.
    pub fn single(b: u8) -> Self {
        let mut c = Self::EMPTY;
        c.insert(b);
        c
    }

    /// Creates the class containing every byte in the inclusive range
    /// `lo..=hi`.
    ///
    /// An inverted range (`lo > hi`) yields the empty class.
    pub fn range(lo: u8, hi: u8) -> Self {
        let mut c = Self::EMPTY;
        if lo <= hi {
            for b in lo..=hi {
                c.insert(b);
            }
        }
        c
    }

    /// Creates the class of all printable ASCII bytes (0x20..=0x7e).
    pub fn printable_ascii() -> Self {
        Self::range(0x20, 0x7e)
    }

    /// Creates the class containing every byte of `bytes`.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut c = Self::EMPTY;
        for &b in bytes {
            c.insert(b);
        }
        c
    }

    /// Adds `b` to the class.
    pub fn insert(&mut self, b: u8) {
        self.bits[(b >> 6) as usize] |= 1u64 << (b & 63);
    }

    /// Removes `b` from the class.
    pub fn remove(&mut self, b: u8) {
        self.bits[(b >> 6) as usize] &= !(1u64 << (b & 63));
    }

    /// Returns whether `b` is a member.
    pub fn contains(&self, b: u8) -> bool {
        self.bits[(b >> 6) as usize] & (1u64 << (b & 63)) != 0
    }

    /// Returns the number of bytes in the class.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns whether the class is empty.
    pub fn is_empty(&self) -> bool {
        self.bits == [0; 4]
    }

    /// Set union.
    pub fn union(&self, other: &CharClass) -> CharClass {
        let mut bits = self.bits;
        for (w, o) in bits.iter_mut().zip(other.bits.iter()) {
            *w |= o;
        }
        CharClass { bits }
    }

    /// Set intersection.
    pub fn intersect(&self, other: &CharClass) -> CharClass {
        let mut bits = self.bits;
        for (w, o) in bits.iter_mut().zip(other.bits.iter()) {
            *w &= o;
        }
        CharClass { bits }
    }

    /// Set complement relative to all 256 byte values.
    pub fn complement(&self) -> CharClass {
        let mut bits = self.bits;
        for w in bits.iter_mut() {
            *w = !*w;
        }
        CharClass { bits }
    }

    /// Returns the smallest byte in the class, if any.
    pub fn first(&self) -> Option<u8> {
        self.iter().next()
    }

    /// Iterates over member bytes in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter { class: self, next: 0, done: false }
    }

    /// Picks a uniformly random member byte.
    ///
    /// Returns `None` if the class is empty.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> Option<u8> {
        let n = self.len();
        if n == 0 {
            return None;
        }
        let k = rng.gen_range(0..n);
        self.iter().nth(k)
    }

    /// Returns whether `self` is a subset of `other`.
    pub fn is_subset(&self, other: &CharClass) -> bool {
        self.intersect(other) == *self
    }
}

impl From<u8> for CharClass {
    fn from(b: u8) -> Self {
        CharClass::single(b)
    }
}

impl FromIterator<u8> for CharClass {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        let mut c = CharClass::EMPTY;
        for b in iter {
            c.insert(b);
        }
        c
    }
}

impl Extend<u8> for CharClass {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        for b in iter {
            self.insert(b);
        }
    }
}

/// Iterator over the member bytes of a [`CharClass`], in ascending order.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    class: &'a CharClass,
    next: u8,
    done: bool,
}

impl Iterator for Iter<'_> {
    type Item = u8;

    fn next(&mut self) -> Option<u8> {
        while !self.done {
            let b = self.next;
            if self.next == u8::MAX {
                self.done = true;
            } else {
                self.next += 1;
            }
            if self.class.contains(b) {
                return Some(b);
            }
        }
        None
    }
}

fn escape_byte(b: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match b {
        b'\\' | b'[' | b']' | b'-' | b'^' => write!(f, "\\{}", b as char),
        0x20..=0x7e => write!(f, "{}", b as char),
        b'\n' => write!(f, "\\n"),
        b'\t' => write!(f, "\\t"),
        b'\r' => write!(f, "\\r"),
        _ => write!(f, "\\x{b:02x}"),
    }
}

impl fmt::Display for CharClass {
    /// Renders in regex character-class style: single members render bare
    /// (`a`), multi-member classes render as ranges (`[a-z0-9]`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len() == 1 {
            return escape_byte(self.first().expect("len 1"), f);
        }
        write!(f, "[")?;
        // Collect maximal runs.
        let mut members: Vec<u8> = self.iter().collect();
        members.dedup();
        let mut i = 0;
        while i < members.len() {
            let start = members[i];
            let mut end = start;
            while i + 1 < members.len() && members[i + 1] == end + 1 {
                i += 1;
                end = members[i];
            }
            if end > start.saturating_add(1) {
                escape_byte(start, f)?;
                write!(f, "-")?;
                escape_byte(end, f)?;
            } else {
                escape_byte(start, f)?;
                if end != start {
                    escape_byte(end, f)?;
                }
            }
            i += 1;
        }
        write!(f, "]")
    }
}

impl fmt::Debug for CharClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CharClass({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn empty_class_has_no_members() {
        let c = CharClass::new();
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert_eq!(c.first(), None);
        assert_eq!(c.iter().count(), 0);
    }

    #[test]
    fn single_contains_only_its_byte() {
        let c = CharClass::single(b'x');
        assert!(c.contains(b'x'));
        assert!(!c.contains(b'y'));
        assert_eq!(c.len(), 1);
        assert_eq!(c.first(), Some(b'x'));
    }

    #[test]
    fn range_is_inclusive() {
        let c = CharClass::range(b'a', b'c');
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![b'a', b'b', b'c']);
    }

    #[test]
    fn inverted_range_is_empty() {
        assert!(CharClass::range(b'z', b'a').is_empty());
    }

    #[test]
    fn full_contains_all_bytes() {
        let c = CharClass::full();
        assert_eq!(c.len(), 256);
        assert!(c.contains(0));
        assert!(c.contains(255));
    }

    #[test]
    fn union_and_intersect_behave_as_sets() {
        let a = CharClass::range(b'a', b'm');
        let b = CharClass::range(b'g', b'z');
        let u = a.union(&b);
        let i = a.intersect(&b);
        assert_eq!(u, CharClass::range(b'a', b'z'));
        assert_eq!(i, CharClass::range(b'g', b'm'));
    }

    #[test]
    fn complement_flips_membership() {
        let a = CharClass::single(b'a');
        let c = a.complement();
        assert!(!c.contains(b'a'));
        assert_eq!(c.len(), 255);
        assert_eq!(c.complement(), a);
    }

    #[test]
    fn remove_deletes_member() {
        let mut c = CharClass::range(b'a', b'c');
        c.remove(b'b');
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![b'a', b'c']);
    }

    #[test]
    fn subset_relation() {
        let small = CharClass::range(b'b', b'd');
        let big = CharClass::range(b'a', b'z');
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        assert!(small.is_subset(&small));
    }

    #[test]
    fn iteration_covers_boundary_bytes() {
        let c = CharClass::from_bytes(&[0, 63, 64, 127, 128, 255]);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![0, 63, 64, 127, 128, 255]);
    }

    #[test]
    fn sampling_returns_members_only() {
        let c = CharClass::from_bytes(b"xyz");
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let b = c.sample(&mut rng).expect("nonempty");
            assert!(c.contains(b));
        }
        assert_eq!(CharClass::EMPTY.sample(&mut rng), None);
    }

    #[test]
    fn display_single_and_range() {
        assert_eq!(CharClass::single(b'a').to_string(), "a");
        assert_eq!(CharClass::range(b'a', b'd').to_string(), "[a-d]");
        assert_eq!(CharClass::from_bytes(b"ab").to_string(), "[ab]");
    }

    #[test]
    fn display_escapes_metacharacters() {
        assert_eq!(CharClass::single(b'[').to_string(), "\\[");
        assert_eq!(CharClass::single(b'\n').to_string(), "\\n");
        assert_eq!(CharClass::single(0x01).to_string(), "\\x01");
    }

    #[test]
    fn from_iterator_collects() {
        let c: CharClass = (b'a'..=b'e').collect();
        assert_eq!(c, CharClass::range(b'a', b'e'));
    }
}
