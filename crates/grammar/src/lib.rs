//! Grammar substrate for the GLADE reproduction.
//!
//! This crate provides the language-representation machinery that the GLADE
//! grammar-synthesis algorithm ([Bastani et al., PLDI 2017]) and its
//! evaluation are built on:
//!
//! * [`CharClass`] — sets of bytes, the terminal alphabet.
//! * [`Regex`] — regular expressions (the output of GLADE's phase one) with
//!   an exact derivative-based membership test and random sampling.
//! * [`cfg::Grammar`] — context-free grammars with byte-class terminals (the
//!   output of GLADE's phase two and the representation of the handwritten
//!   evaluation grammars).
//! * [`Earley`] — a general CFG recognizer/parser used for recall
//!   measurement and by the grammar-based fuzzer.
//! * [`Sampler`] — bounded-depth uniform-production sampling of grammar
//!   members (the distribution of Section 8.1 of the paper).
//!
//! # Quick example
//!
//! ```
//! use glade_grammar::cfg::{GrammarBuilder, lit, nt};
//! use glade_grammar::{Earley, Sampler};
//! use rand::SeedableRng;
//!
//! // Matching tags: A → "<a>" A "</a>" | ε
//! let mut b = GrammarBuilder::new();
//! let a = b.nt("A");
//! b.prod(a, [lit(b"<a>"), nt(a), lit(b"</a>")].concat());
//! b.prod(a, vec![]);
//! let g = b.build(a)?;
//!
//! assert!(Earley::new(&g).accepts(b"<a><a></a></a>"));
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let sample = Sampler::new(&g).sample(&mut rng).unwrap();
//! assert!(Earley::new(&g).accepts(&sample));
//! # Ok::<(), glade_grammar::cfg::GrammarError>(())
//! ```
//!
//! [Bastani et al., PLDI 2017]: https://doi.org/10.1145/3062341.3062349

#![warn(missing_docs)]

pub mod cfg;
mod charclass;
mod earley;
mod regex;
mod sample;
mod text;

pub use cfg::{Grammar, GrammarBuilder, GrammarError, NtId, Sym};
pub use charclass::CharClass;
pub use earley::{Earley, ParseTree};
pub use regex::Regex;
pub use sample::{Sampler, DEFAULT_MAX_DEPTH};
pub use text::{grammar_from_text, grammar_to_text, ParseGrammarError};
