//! A plain-text serialization format for [`Grammar`]s.
//!
//! Synthesized grammars are artifacts users want to keep: feed back into a
//! fuzzer, inspect, or diff across runs. This module defines a stable,
//! line-oriented format with full round-tripping:
//!
//! ```text
//! glade-grammar v1
//! start 0
//! nt 0 S
//! nt 1 R0
//! prod 0 : N1
//! prod 1 :
//! prod 1 : N1 C61-7a C30
//! ```
//!
//! Symbols are `N<index>` for nonterminal references and `C<ranges>` for
//! byte classes, where ranges are comma-separated `lo[-hi]` hex pairs.

use crate::cfg::{Grammar, GrammarBuilder, NtId, Sym};
use crate::CharClass;
use std::fmt::Write as _;

/// Errors from [`grammar_from_text`].
///
/// `#[non_exhaustive]`: future format revisions may add variants (match
/// with a wildcard arm).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseGrammarError {
    /// The header line is missing or names an unsupported version.
    BadHeader,
    /// A line does not match any directive.
    BadLine(usize),
    /// A directive has a malformed field.
    BadField(usize),
    /// The grammar references an undeclared nonterminal or fails
    /// validation.
    Invalid(String),
}

impl std::fmt::Display for ParseGrammarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseGrammarError::BadHeader => write!(f, "missing or unsupported header"),
            ParseGrammarError::BadLine(n) => write!(f, "unrecognized directive on line {n}"),
            ParseGrammarError::BadField(n) => write!(f, "malformed field on line {n}"),
            ParseGrammarError::Invalid(e) => write!(f, "invalid grammar: {e}"),
        }
    }
}

impl std::error::Error for ParseGrammarError {}

/// Serializes `grammar` to the v1 text format.
pub fn grammar_to_text(grammar: &Grammar) -> String {
    let mut out = String::new();
    out.push_str("glade-grammar v1\n");
    let _ = writeln!(out, "start {}", grammar.start().index());
    for nt in grammar.nonterminals() {
        let _ = writeln!(out, "nt {} {}", nt.index(), sanitize_name(grammar.name(nt)));
    }
    for nt in grammar.nonterminals() {
        for rhs in grammar.productions(nt) {
            let mut line = format!("prod {} :", nt.index());
            for sym in rhs {
                match sym {
                    Sym::Nt(n) => {
                        let _ = write!(line, " N{}", n.index());
                    }
                    Sym::Class(c) => {
                        let _ = write!(line, " C{}", class_ranges(c));
                    }
                }
            }
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

/// Parses the v1 text format back into a [`Grammar`].
///
/// # Errors
///
/// Returns a [`ParseGrammarError`] describing the first malformed line, or
/// the grammar-validation failure.
pub fn grammar_from_text(text: &str) -> Result<Grammar, ParseGrammarError> {
    let mut lines = text.lines().enumerate();
    let Some((_, header)) = lines.next() else {
        return Err(ParseGrammarError::BadHeader);
    };
    if header.trim() != "glade-grammar v1" {
        return Err(ParseGrammarError::BadHeader);
    }

    let mut start: Option<usize> = None;
    let mut names: Vec<(usize, String)> = Vec::new();
    let mut prods: Vec<(usize, Vec<SymSpec>, usize)> = Vec::new();

    enum SymSpec {
        Nt(usize),
        Class(CharClass),
    }

    for (lineno, raw) in lines {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = lineno + 1;
        if let Some(rest) = line.strip_prefix("start ") {
            start = Some(rest.trim().parse().map_err(|_| ParseGrammarError::BadField(lineno))?);
        } else if let Some(rest) = line.strip_prefix("nt ") {
            let mut parts = rest.splitn(2, ' ');
            let idx: usize = parts
                .next()
                .and_then(|p| p.parse().ok())
                .ok_or(ParseGrammarError::BadField(lineno))?;
            let name = parts.next().unwrap_or("N").to_owned();
            names.push((idx, name));
        } else if let Some(rest) = line.strip_prefix("prod ") {
            let (head, tail) = rest.split_once(':').ok_or(ParseGrammarError::BadField(lineno))?;
            let lhs: usize =
                head.trim().parse().map_err(|_| ParseGrammarError::BadField(lineno))?;
            let mut syms = Vec::new();
            for tok in tail.split_whitespace() {
                if let Some(n) = tok.strip_prefix('N') {
                    let idx = n.parse().map_err(|_| ParseGrammarError::BadField(lineno))?;
                    syms.push(SymSpec::Nt(idx));
                } else if let Some(r) = tok.strip_prefix('C') {
                    let class = parse_ranges(r).ok_or(ParseGrammarError::BadField(lineno))?;
                    syms.push(SymSpec::Class(class));
                } else {
                    return Err(ParseGrammarError::BadField(lineno));
                }
            }
            prods.push((lhs, syms, lineno));
        } else {
            return Err(ParseGrammarError::BadLine(lineno));
        }
    }

    names.sort_by_key(|(i, _)| *i);
    let mut b = GrammarBuilder::new();
    let mut ids: Vec<NtId> = Vec::with_capacity(names.len());
    for (expected, (idx, name)) in names.iter().enumerate() {
        if *idx != expected {
            return Err(ParseGrammarError::Invalid(format!(
                "nonterminal indices must be dense, missing {expected}"
            )));
        }
        ids.push(b.nt(name));
    }
    for (lhs, syms, lineno) in prods {
        let lhs_id = *ids.get(lhs).ok_or(ParseGrammarError::BadField(lineno))?;
        let mut rhs = Vec::with_capacity(syms.len());
        for s in syms {
            match s {
                SymSpec::Nt(i) => {
                    rhs.push(Sym::Nt(*ids.get(i).ok_or(ParseGrammarError::BadField(lineno))?));
                }
                SymSpec::Class(c) => rhs.push(Sym::Class(c)),
            }
        }
        b.prod(lhs_id, rhs);
    }
    let start_idx = start.ok_or(ParseGrammarError::BadHeader)?;
    let start_id = *ids
        .get(start_idx)
        .ok_or_else(|| ParseGrammarError::Invalid("start index out of range".into()))?;
    b.build(start_id).map_err(|e| ParseGrammarError::Invalid(e.to_string()))
}

/// Encodes a class as comma-separated hex ranges (`61-7a,30`).
fn class_ranges(c: &CharClass) -> String {
    let mut out = String::new();
    let members: Vec<u8> = c.iter().collect();
    let mut i = 0;
    while i < members.len() {
        let lo = members[i];
        let mut hi = lo;
        while i + 1 < members.len() && members[i + 1] == hi + 1 {
            i += 1;
            hi = members[i];
        }
        if !out.is_empty() {
            out.push(',');
        }
        if lo == hi {
            let _ = write!(out, "{lo:02x}");
        } else {
            let _ = write!(out, "{lo:02x}-{hi:02x}");
        }
        i += 1;
    }
    out
}

fn parse_ranges(s: &str) -> Option<CharClass> {
    let mut c = CharClass::new();
    if s.is_empty() {
        return None;
    }
    for part in s.split(',') {
        match part.split_once('-') {
            Some((lo, hi)) => {
                let lo = u8::from_str_radix(lo, 16).ok()?;
                let hi = u8::from_str_radix(hi, 16).ok()?;
                if lo > hi {
                    return None;
                }
                for b in lo..=hi {
                    c.insert(b);
                }
            }
            None => c.insert(u8::from_str_radix(part, 16).ok()?),
        }
    }
    Some(c)
}

/// Replaces whitespace in display names so lines stay parseable.
fn sanitize_name(name: &str) -> String {
    name.replace(char::is_whitespace, "_")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{cls, lit, nt};
    use crate::Earley;

    fn sample_grammar() -> Grammar {
        let mut b = GrammarBuilder::new();
        let s = b.nt("S");
        let r = b.nt("R zero"); // name with a space: sanitized on write
        b.prod(s, [lit(b"<a>"), nt(r), lit(b"</a>")].concat());
        b.prod(r, vec![]);
        b.prod(r, [nt(r), cls(CharClass::range(b'a', b'z'))].concat());
        b.build(s).unwrap()
    }

    #[test]
    fn roundtrip_preserves_language() {
        let g = sample_grammar();
        let text = grammar_to_text(&g);
        let g2 = grammar_from_text(&text).expect("roundtrip parses");
        let e1 = Earley::new(&g);
        let e2 = Earley::new(&g2);
        for s in [&b"<a></a>"[..], b"<a>xyz</a>", b"<a>", b"zzz", b"<a>Q</a>"] {
            assert_eq!(e1.accepts(s), e2.accepts(s), "disagree on {s:?}");
        }
    }

    #[test]
    fn text_format_is_stable() {
        let g = sample_grammar();
        let text = grammar_to_text(&g);
        assert!(text.starts_with("glade-grammar v1\nstart 0\n"), "{text}");
        assert!(text.contains("nt 1 R_zero"), "{text}");
        assert!(text.contains("C61-7a"), "{text}");
        // Idempotent through a second roundtrip.
        let g2 = grammar_from_text(&text).unwrap();
        assert_eq!(grammar_to_text(&g2), text);
    }

    #[test]
    fn rejects_bad_header() {
        assert_eq!(grammar_from_text(""), Err(ParseGrammarError::BadHeader));
        assert_eq!(grammar_from_text("nope v9\n"), Err(ParseGrammarError::BadHeader));
    }

    #[test]
    fn rejects_malformed_lines() {
        let bad = "glade-grammar v1\nstart 0\nnt 0 S\nprod 0 : X9\n";
        assert!(matches!(grammar_from_text(bad), Err(ParseGrammarError::BadField(_))));
        let bad2 = "glade-grammar v1\nstart 0\nnt 0 S\nwhatever\n";
        assert!(matches!(grammar_from_text(bad2), Err(ParseGrammarError::BadLine(_))));
    }

    #[test]
    fn rejects_sparse_indices() {
        let bad = "glade-grammar v1\nstart 0\nnt 0 S\nnt 2 T\nprod 0 : C61\nprod 2 : C62\n";
        assert!(matches!(grammar_from_text(bad), Err(ParseGrammarError::Invalid(_))));
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let text = "glade-grammar v1\n# comment\n\nstart 0\nnt 0 S\nprod 0 : C61\n";
        let g = grammar_from_text(text).unwrap();
        assert!(Earley::new(&g).accepts(b"a"));
    }

    #[test]
    fn class_range_encoding() {
        let c = CharClass::from_bytes(b"abcx");
        assert_eq!(class_ranges(&c), "61-63,78");
        assert_eq!(parse_ranges("61-63,78"), Some(c));
        assert_eq!(parse_ranges(""), None);
        assert_eq!(parse_ranges("zz"), None);
        assert_eq!(parse_ranges("63-61"), None);
    }
}
