//! Property-based tests for the grammar substrate.
//!
//! These cross-validate the three independent language implementations in
//! this crate — the derivative-based regex matcher, the Earley parser, and
//! the samplers — against each other and against a naive reference matcher.

use glade_grammar::cfg::{cls, lit, nt, GrammarBuilder};
use glade_grammar::{CharClass, Earley, Grammar, Regex, Sampler};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Reference matcher: naive recursive backtracking over the regex AST.
// ---------------------------------------------------------------------------

/// Returns the set of suffix offsets reachable after matching a prefix of
/// `input[at..]` against `r`.
fn naive_match_ends(r: &Regex, input: &[u8], at: usize, fuel: &mut usize) -> Vec<usize> {
    if *fuel == 0 {
        return Vec::new();
    }
    *fuel -= 1;
    match r {
        Regex::Empty => Vec::new(),
        Regex::Epsilon => vec![at],
        Regex::Class(c) => {
            if at < input.len() && c.contains(input[at]) {
                vec![at + 1]
            } else {
                Vec::new()
            }
        }
        Regex::Concat(parts) => {
            let mut fronts = vec![at];
            for p in parts {
                let mut next = Vec::new();
                for f in fronts {
                    next.extend(naive_match_ends(p, input, f, fuel));
                }
                next.sort_unstable();
                next.dedup();
                fronts = next;
                if fronts.is_empty() {
                    break;
                }
            }
            fronts
        }
        Regex::Alt(parts) => {
            let mut out = Vec::new();
            for p in parts {
                out.extend(naive_match_ends(p, input, at, fuel));
            }
            out.sort_unstable();
            out.dedup();
            out
        }
        Regex::Star(inner) => {
            let mut seen = vec![at];
            let mut frontier = vec![at];
            while let Some(f) = frontier.pop() {
                for e in naive_match_ends(inner, input, f, fuel) {
                    if e > f && !seen.contains(&e) {
                        seen.push(e);
                        frontier.push(e);
                    }
                }
            }
            seen
        }
    }
}

fn naive_is_match(r: &Regex, input: &[u8]) -> bool {
    let mut fuel = 200_000;
    naive_match_ends(r, input, 0, &mut fuel).contains(&input.len())
}

// ---------------------------------------------------------------------------
// Generators.
// ---------------------------------------------------------------------------

/// A small alphabet keeps collisions (and hence interesting matches) likely.
fn small_byte() -> impl Strategy<Value = u8> {
    prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')]
}

fn arb_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        3 => small_byte().prop_map(|b| Regex::lit(&[b])),
        1 => Just(Regex::Epsilon),
        1 => proptest::collection::vec(small_byte(), 1..3)
            .prop_map(|bs| Regex::class(CharClass::from_bytes(&bs))),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Regex::concat),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Regex::alt),
            inner.prop_map(Regex::star),
        ]
    })
}

fn arb_input() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(small_byte(), 0..10)
}

/// Converts a regex to an equivalent CFG so Earley can be cross-checked
/// against the derivative matcher.
fn regex_to_cfg(r: &Regex) -> Grammar {
    fn go(r: &Regex, b: &mut GrammarBuilder, counter: &mut usize) -> Vec<glade_grammar::Sym> {
        match r {
            Regex::Empty => unreachable!("generator never emits bare Empty"),
            Regex::Epsilon => vec![],
            Regex::Class(c) => cls(*c),
            Regex::Concat(parts) => {
                let mut out = Vec::new();
                for p in parts {
                    out.extend(go(p, b, counter));
                }
                out
            }
            Regex::Alt(parts) => {
                *counter += 1;
                let id = b.nt(&format!("Alt{counter}"));
                let bodies: Vec<_> = parts.iter().map(|p| go(p, b, counter)).collect();
                for body in bodies {
                    b.prod(id, body);
                }
                nt(id)
            }
            Regex::Star(inner) => {
                *counter += 1;
                let id = b.nt(&format!("Star{counter}"));
                let body = go(inner, b, counter);
                b.prod(id, vec![]);
                b.prod(id, [nt(id), body].concat());
                nt(id)
            }
        }
    }
    let mut b = GrammarBuilder::new();
    let start = b.nt("S");
    let mut counter = 0;
    let body = go(r, &mut b, &mut counter);
    b.prod(start, body);
    b.build(start).expect("generated grammar is valid")
}

// ---------------------------------------------------------------------------
// Properties.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The derivative matcher agrees with a naive backtracking matcher.
    #[test]
    fn derivative_matches_reference(r in arb_regex(), input in arb_input()) {
        prop_assert_eq!(r.is_match(&input), naive_is_match(&r, &input));
    }

    /// Strings sampled from a regex are members of that regex's language.
    #[test]
    fn regex_samples_are_members(r in arb_regex(), seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        if let Some(s) = r.sample(&mut rng, 3) {
            prop_assert!(r.is_match(&s), "sample {:?} of {} rejected", s, r);
        }
    }

    /// Earley on the CFG translation of a regex agrees with the derivative
    /// matcher on that regex.
    #[test]
    fn earley_agrees_with_derivatives(r in arb_regex(), input in arb_input()) {
        let g = regex_to_cfg(&r);
        let earley = Earley::new(&g);
        prop_assert_eq!(earley.accepts(&input), r.is_match(&input),
            "regex {} grammar\n{}", r, g);
    }

    /// Earley parse trees reproduce the exact input as their yield.
    #[test]
    fn parse_tree_yield_roundtrips(r in arb_regex(), input in arb_input()) {
        let g = regex_to_cfg(&r);
        let earley = Earley::new(&g);
        if let Some(tree) = earley.parse(&input) {
            prop_assert_eq!(tree.to_bytes(), input);
        }
    }

    /// CFG samples are accepted by Earley on the same grammar.
    #[test]
    fn cfg_samples_are_members(r in arb_regex(), seed in any::<u64>()) {
        use rand::SeedableRng;
        let g = regex_to_cfg(&r);
        let sampler = Sampler::with_max_depth(&g, 12);
        let earley = Earley::new(&g);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        if let Some(s) = sampler.sample(&mut rng) {
            prop_assert!(earley.accepts(&s));
        }
    }

    /// CharClass set algebra matches per-byte boolean logic.
    #[test]
    fn charclass_algebra(xs in proptest::collection::vec(any::<u8>(), 0..16),
                         ys in proptest::collection::vec(any::<u8>(), 0..16),
                         probe in any::<u8>()) {
        let a = CharClass::from_bytes(&xs);
        let b = CharClass::from_bytes(&ys);
        prop_assert_eq!(a.union(&b).contains(probe), a.contains(probe) || b.contains(probe));
        prop_assert_eq!(a.intersect(&b).contains(probe), a.contains(probe) && b.contains(probe));
        prop_assert_eq!(a.complement().contains(probe), !a.contains(probe));
    }

    /// Smart constructors preserve language membership (idempotent rebuild).
    #[test]
    fn smart_constructor_rebuild_preserves_language(r in arb_regex(), input in arb_input()) {
        fn rebuild(r: &Regex) -> Regex {
            match r {
                Regex::Empty => Regex::Empty,
                Regex::Epsilon => Regex::Epsilon,
                Regex::Class(c) => Regex::class(*c),
                Regex::Concat(ps) => Regex::concat(ps.iter().map(rebuild).collect()),
                Regex::Alt(ps) => Regex::alt(ps.iter().map(rebuild).collect()),
                Regex::Star(i) => Regex::star(rebuild(i)),
            }
        }
        let r2 = rebuild(&r);
        prop_assert_eq!(r.is_match(&input), r2.is_match(&input));
    }

    /// `lit` literals match exactly themselves.
    #[test]
    fn lit_matches_only_itself(s in proptest::collection::vec(small_byte(), 0..8),
                               t in proptest::collection::vec(small_byte(), 0..8)) {
        let r = Regex::lit(&s);
        prop_assert_eq!(r.is_match(&t), s == t);
    }
}

#[test]
fn regex_to_cfg_translation_sanity() {
    let r = Regex::star(Regex::alt(vec![Regex::lit(b"ab"), Regex::lit(b"c")]));
    let g = regex_to_cfg(&r);
    let e = Earley::new(&g);
    assert!(e.accepts(b""));
    assert!(e.accepts(b"abcab"));
    assert!(!e.accepts(b"ba"));
}

#[test]
fn lit_grammar_helper_matches() {
    let mut b = GrammarBuilder::new();
    let s = b.nt("S");
    b.prod(s, lit(b"abc"));
    let g = b.build(s).unwrap();
    assert!(Earley::new(&g).accepts(b"abc"));
    assert!(!Earley::new(&g).accepts(b"ab"));
}
