//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the API subset its property tests use: the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map` / `prop_flat_map` /
//! `prop_recursive`, [`prop_oneof!`] (weighted and unweighted), `Just`,
//! `any::<T>()`, ranges as strategies, tuple strategies,
//! [`collection::vec`], and [`sample::Index`].
//!
//! Semantics differ from upstream in one deliberate way: there is no
//! shrinking. A failing case reports the case number and the RNG is seeded
//! deterministically from the test name, so failures reproduce exactly on
//! rerun.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic RNG driving test-case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seeds deterministically from a test name (FNV-1a).
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }

    /// Failure raised by `prop_assert!` family macros.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Per-test configuration (`cases` = generated inputs per property).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::rc::Rc;

    /// A recipe for generating random values of `Self::Value`.
    ///
    /// Unlike upstream proptest there is no shrinking: a strategy is just a
    /// cloneable generator.
    pub trait Strategy: Clone {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            F: Fn(Self::Value) -> O + Clone,
            Self: Sized,
        {
            Map { strategy: self, f }
        }

        /// Generates an intermediate value, then generates from the
        /// strategy `f` builds from it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            S2: Strategy,
            F: Fn(Self::Value) -> S2 + Clone,
            Self: Sized,
        {
            FlatMap { strategy: self, f }
        }

        /// Builds a recursive strategy: `f` receives the strategy for the
        /// smaller levels and returns the composite level. `depth` bounds
        /// recursion; `_desired_size` and `_expected_branch_size` are
        /// accepted for API compatibility and ignored.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
        {
            let base = self.boxed();
            let mut level = base.clone();
            for _ in 0..depth {
                let rec = f(level).boxed();
                // Keep leaves likely enough that sizes stay bounded.
                level = Union::new(vec![(1, base.clone()), (2, rec)]).boxed();
            }
            level
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// Strategy yielding a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        strategy: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O + Clone,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.strategy.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        strategy: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2 + Clone,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.strategy.generate(rng)).generate(rng)
        }
    }

    /// Weighted choice between strategies (the `prop_oneof!` backend).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union { arms: self.arms.clone() }
        }
    }

    impl<T> Union<T> {
        /// Builds from `(weight, strategy)` arms; weights must not all be 0.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            assert!(arms.iter().any(|(w, _)| *w > 0), "prop_oneof! weights sum to 0");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rng.below(total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weight bookkeeping")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);

    /// Types with a canonical `any::<T>()` strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-range strategy for `T` (upstream's `any::<T>()`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive element-count bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with a random length in `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod sample {
    use crate::strategy::Arbitrary;
    use crate::test_runner::TestRng;

    /// A position selector independent of the collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Maps this selector onto `0..len`; `len` must be nonzero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((self.0 as u128 * len as u128) >> 64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted (`w => strategy`) or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// the whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// `prop_assert!` for inequality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = (move || -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(u8),
        Node(Vec<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 1,
            Tree::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in 0u8..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_respects_sizes(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_weighted_hits_arms(b in prop_oneof![2 => Just(b'x'), 1 => Just(b'y')]) {
            prop_assert!(b == b'x' || b == b'y');
        }

        #[test]
        fn flat_map_threads_values(v in (1usize..4).prop_flat_map(|n|
            crate::collection::vec(Just(0u8), n..=n))) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }

        #[test]
        fn recursive_strategies_terminate(t in Just(Tree::Leaf(0)).prop_recursive(3, 8, 2, |inner|
            crate::collection::vec(inner, 1..3).prop_map(Tree::Node))) {
            prop_assert!(depth(&t) <= 4, "depth {} tree {:?}", depth(&t), t);
        }

        #[test]
        fn index_is_always_in_range(ix in any::<crate::sample::Index>(), len in 1usize..40) {
            prop_assert!(ix.index(len) < len);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(any::<u8>(), 0..10);
        let mut r1 = crate::test_runner::TestRng::from_name("x");
        let mut r2 = crate::test_runner::TestRng::from_name("x");
        for _ in 0..20 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(5))]
            fn always_fails(x in 0u8..10) {
                prop_assert!(x > 200, "x = {}", x);
            }
        }
        always_fails();
    }
}
