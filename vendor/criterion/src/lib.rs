//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros — with a simple calibrated-timing loop instead of criterion's
//! statistical machinery. Each benchmark prints a mean wall-clock time per
//! iteration.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Hint for how much a batched setup costs relative to the routine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Measurement driver handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with a fresh `setup` product per iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Top-level benchmark context.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        let samples = self.sample_size;
        run_benchmark(&name.into(), samples, f);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timing samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(&format!("{}/{}", self.name, name), samples, f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    // Calibrate: find an iteration count taking ≥ ~5 ms, capped for very
    // slow routines so total time stays bounded.
    let mut iters = 1u64;
    let mut per_iter;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter = b.elapsed.checked_div(iters as u32).unwrap_or(Duration::ZERO);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    // Measure.
    let samples = samples.max(1) as u64;
    let mut total = Duration::ZERO;
    for _ in 0..samples {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        total += b.elapsed;
    }
    per_iter = total.checked_div((samples * iters) as u32).unwrap_or(per_iter);
    println!("bench {label:<48} {per_iter:>12.3?}/iter ({iters} iters x {samples} samples)");
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` from one or more `criterion_group!` names.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut ran = 0u64;
        group.bench_function("count", |b| b.iter(|| ran += 1));
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
