//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the small API subset it actually uses: [`Rng`] (`gen_range`, `gen_bool`,
//! `gen`), [`SeedableRng::seed_from_u64`], and a deterministic
//! [`rngs::StdRng`] built on xoshiro256++ seeded via SplitMix64. The
//! distributions are uniform but make no attempt to match upstream `rand`'s
//! exact value streams — only determinism for a fixed seed is guaranteed.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, provided for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value of `T` from its full uniform distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seed-based construction.
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Converts 64 random bits to a float in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable from their full uniform distribution via [`Rng::gen`].
pub trait Standard {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, n)` by Lemire-style multiply-shift (no modulo
/// bias worth worrying about at 64→128-bit width).
fn uniform_below(rng: &mut (impl RngCore + ?Sized), n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_signed!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty float range");
        let u = unit_f64(rng.next_u64());
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty float range");
        let u = unit_f64(rng.next_u64()) as f32;
        self.start + u * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the workspace's `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut next = || {
                seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_state(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u8..=255);
            let _ = y;
            let z = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&z));
            let f = rng.gen_range(0.0f64..2.5);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "heads = {heads}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_standard_types() {
        let mut rng = StdRng::seed_from_u64(9);
        let _: u64 = rng.gen();
        let _: bool = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn works_through_mut_reference() {
        fn takes<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..10)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let v = takes(&mut rng);
        assert!(v < 10);
    }
}
