//! # GLADE reproduction — umbrella crate
//!
//! A from-scratch Rust reproduction of *Bastani, Sharma, Aiken, Liang.
//! "Synthesizing Program Input Grammars", PLDI 2017*: an algorithm that
//! synthesizes a context-free grammar approximating a program's input
//! language from a handful of seed inputs and blackbox membership queries,
//! plus the paper's full evaluation stack (language-inference baselines,
//! instrumented target programs, and three fuzzers).
//!
//! This crate re-exports the workspace's public APIs under one roof:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `glade-core` | The GLADE synthesis algorithm and oracles |
//! | [`grammar`] | `glade-grammar` | Byte classes, regexes, CFGs, Earley, sampling |
//! | [`automata`] | `glade-automata` | DFAs/NFAs, L-Star, RPNI baselines |
//! | [`targets`] | `glade-targets` | Instrumented subject programs + handwritten grammars |
//! | [`fuzz`] | `glade-fuzz` | Grammar / naive / afl-like fuzzers + campaigns |
//! | [`eval`] | `glade-eval` | Precision/recall/F1 and experiment runners |
//!
//! # End-to-end example
//!
//! Learn a grammar for the XML target program through the session API and
//! fuzz it:
//!
//! ```
//! use glade_repro::core::GladeBuilder;
//! use glade_repro::fuzz::{run_campaign, GrammarFuzzer};
//! use glade_repro::targets::programs::Xml;
//! use glade_repro::targets::{Target, TargetOracle};
//! use rand::SeedableRng;
//!
//! let xml = Xml;
//! let oracle = TargetOracle::new(&xml);
//! let mut session = GladeBuilder::new().max_queries(20_000).session(&oracle);
//! let synthesis = session.add_seeds(&[b"<a>hi</a>".to_vec()]).unwrap();
//!
//! let mut fuzzer = GrammarFuzzer::new(synthesis.grammar, &[b"<a>hi</a>".to_vec()]);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let result = run_campaign(&xml, &mut fuzzer, 200, &mut rng);
//! assert!(result.valid_rate() > 0.5, "most grammar-fuzzed inputs are valid");
//!
//! // Sessions persist their query cache (`session.save_cache(path)`), so a
//! // later campaign against the same target warm-starts for free; see
//! // `glade_fuzz::learn_target_grammar` and examples/session_progress.rs.
//! ```

#![warn(missing_docs)]

/// The GLADE synthesis algorithm (re-export of `glade-core`).
pub mod core {
    pub use glade_core::*;
}

/// Grammar substrate (re-export of `glade-grammar`).
pub mod grammar {
    pub use glade_grammar::*;
}

/// Automata and inference baselines (re-export of `glade-automata`).
pub mod automata {
    pub use glade_automata::*;
}

/// Evaluation subjects (re-export of `glade-targets`).
pub mod targets {
    pub use glade_targets::*;
}

/// Fuzzers and campaigns (re-export of `glade-fuzz`).
pub mod fuzz {
    pub use glade_fuzz::*;
}

/// Evaluation machinery (re-export of `glade-eval`).
pub mod eval {
    pub use glade_eval::*;
}
