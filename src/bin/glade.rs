//! `glade` — command-line grammar synthesis and grammar-based fuzzing.
//!
//! ```text
//! glade synth  --seed FILE...  (--cmd 'PROG ARGS…' | --target NAME)  [-o grammar.txt]
//!              [--cache FILE] [--cache-format text|binary]
//!              [--stdin|--tempfile|--pool N] [--frame-batch N]
//!              [--wire-v1] [--oracle-timeout SECS] [--max-respawns N]
//!              [--max-queries N] [--no-chargen] [--no-phase2] [--no-memo]
//! glade sample --grammar grammar.txt [--count N] [--max-depth D] [--seed-rng S]
//! glade check  --grammar grammar.txt [FILE]       # membership test (stdin default)
//! glade fuzz   --grammar grammar.txt --seed FILE... [--count N]    # splice fuzzing
//! glade cache  inspect FILE                        # snapshot format + counts
//! glade cache  convert SRC DST [--format text|binary]  # re-encode a snapshot
//! glade worker NAME [--wire-v1]                    # serve a built-in subject
//! glade targets                                    # list built-in targets
//! glade serve  --socket PATH [--pool N] [--oracle-timeout S] [--cache-dir DIR]
//!              [--cache-format text|binary] [--max-queries N] [--drain-timeout S]
//!              [--max-event-buffer N]
//!                                                  # multi-tenant synthesis daemon
//! glade client --socket PATH (--oracle SPEC | --resume ID) [--seed FILE...]
//!              [-o OUT] [--max-queries N] [--no-memo] [--no-events] [--cache]
//!              [--connect-retries N] [--connect-backoff SECS]
//! ```
//!
//! The oracle is either an external command (exit status 0 = valid input,
//! input delivered on stdin or via a `{}` temp-file placeholder) or one of
//! the built-in instrumented targets from `glade-targets`. `--pool N`
//! switches the external command to pooled execution: N long-lived worker
//! processes answering queries over the length-prefixed verdict protocol
//! (see `glade_core::serve_oracle_worker` and the `glade-oracle-worker`
//! harness) instead of one process spawn per query — the throughput
//! difference on real targets is an order of magnitude. Pooled commands
//! are automatically probed for the v2 *batched-frame* protocol (many
//! queries per pipe round-trip, dispatched from one event loop over
//! nonblocking pipes); `--frame-batch N` tunes the batch size and
//! `--wire-v1` pins the legacy single-query framing for workers whose
//! target must never see the negotiation probe. `--oracle-timeout SECS`
//! bounds every oracle interaction with a per-query deadline (a worker or
//! process that hangs is killed and the query retried or counted as a
//! failure — a hung parser can cost queries, never the run), and
//! `--max-respawns N` tunes how many consecutive unanswered worker
//! failures trip a pool slot's circuit breaker. `glade worker NAME`
//! serves any built-in target or Section 8.2 language over the protocol,
//! so a pooled run needs no separate harness binary:
//! `glade synth --seed s.xml --cmd 'glade worker xml' --pool 8`.
//!
//! `--cache FILE` persists the membership-query cache across invocations:
//! repeated synth runs against the same oracle warm-start from the snapshot
//! and re-pay only genuinely new oracle calls. Snapshots are fingerprinted
//! with the oracle's identity (command line or target name); loading a
//! snapshot produced by a *different* oracle is refused rather than
//! silently replaying stale verdicts. Snapshots come in two formats —
//! the original line-oriented text and an indexed binary format built for
//! large caches (`--cache-format binary`, see `glade_core::CacheFormat`);
//! loads sniff the format from the file, and `glade cache inspect` /
//! `glade cache convert` examine and re-encode snapshots offline.
//!
//! `glade serve` runs the multi-tenant synthesis daemon (`glade-serve v2`
//! over a unix socket; see `glade_core::serve`): concurrent clients open
//! campaigns against `target:NAME` (in-process built-ins, same names as
//! `glade worker`) or `cmd:CMDLINE` (a pooled worker command) oracles,
//! stream seed batches, and receive live synthesis events plus grammars
//! that are byte-identical to local runs. `glade client` drives one
//! campaign from the command line, printing event wire lines to stderr
//! and the grammar to stdout. `glade synth --events` prints the same
//! event wire lines for purely local runs.
//!
//! With `--cache-dir` the server keeps a crash-safe campaign journal:
//! campaigns interrupted by a crash or restart are listed at startup and
//! re-attachable with `glade client --resume ID`, which replays the
//! journaled seed batches over the warm persistent cache and returns the
//! identical grammar while re-paying ~zero unique oracle queries. The
//! first `SIGTERM`/`SIGINT` drains the server (no new campaigns, running
//! ones finish or checkpoint within `--drain-timeout`); a second signal
//! hard-stops it. `--max-event-buffer` bounds each client's queued event
//! stream — a stalled reader is demoted to result-only instead of ever
//! blocking a campaign.

#[cfg(any(target_os = "linux", target_os = "macos"))]
use glade_repro::core::serve::{
    drain_signal_count, install_drain_signals, OpenRequest, OracleFactory, ServeClient,
    ServeConfig, Server,
};
use glade_repro::core::{
    is_binary_snapshot, serve_oracle_worker, serve_oracle_worker_v1, snapshot_from_binary,
    snapshot_from_reader, snapshot_to_binary, snapshot_to_text_with_memo, BinaryCacheFile,
    CacheFormat, CachingOracle, CancelToken, GladeBuilder, GladeConfig, InputMode, Oracle,
    PooledProcessOracle, ProcessOracle, SynthEvent, SynthesisObserver,
};
use glade_repro::fuzz::{Fuzzer, GrammarFuzzer};
use glade_repro::grammar::{grammar_from_text, grammar_to_text, Earley, Grammar, Sampler};
use glade_repro::targets::languages::{section82_languages, toy_xml};
use glade_repro::targets::programs::{all_targets, target_by_name};
use glade_repro::targets::TargetOracle;
use rand::SeedableRng;
use std::io::Read as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("synth") => cmd_synth(&args[1..]),
        Some("sample") => cmd_sample(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("cache") => cmd_cache(&args[1..]),
        Some("worker") => return cmd_worker(&args[1..]),
        #[cfg(any(target_os = "linux", target_os = "macos"))]
        Some("serve") => cmd_serve(&args[1..]),
        #[cfg(any(target_os = "linux", target_os = "macos"))]
        Some("client") => cmd_client(&args[1..]),
        Some("targets") => {
            for t in all_targets() {
                println!(
                    "{:<12} {:>5} source lines, {:>4} coverage points, {} seeds",
                    t.name(),
                    t.source_lines(),
                    t.coverable_lines(),
                    t.seeds().len()
                );
            }
            Ok(())
        }
        Some("--help") | Some("-h") | None => {
            eprint!("{}", USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand `{other}` (try --help)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("glade: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
glade — grammar synthesis from examples and blackbox membership queries

USAGE:
  glade synth  --seed FILE... (--cmd 'PROG ARGS…' | --target NAME) [-o OUT]
               [--cache FILE] [--cache-format text|binary]
               [--stdin|--tempfile|--pool N] [--frame-batch N]
               [--wire-v1] [--oracle-timeout SECS] [--max-respawns N]
               [--max-queries N] [--no-chargen] [--no-phase2] [--no-memo]
               [--events]
  glade sample --grammar FILE [--count N] [--max-depth D] [--seed-rng S]
  glade check  --grammar FILE [INPUT-FILE]
  glade fuzz   --grammar FILE --seed FILE... [--count N] [--seed-rng S]
  glade cache  inspect FILE        # print a snapshot's format and counts
  glade cache  convert SRC DST [--format text|binary]
                                   # re-encode a snapshot (default: the
                                   # opposite of the source format)
  glade worker NAME [--wire-v1]    # serve a built-in subject over the
                                   # pooled-oracle protocol (for --pool)
  glade targets
  glade serve  --socket PATH [--pool N] [--oracle-timeout SECS]
               [--cache-dir DIR] [--cache-format text|binary]
               [--max-queries N] [--drain-timeout SECS]
               [--max-event-buffer N]
               # SIGTERM/SIGINT drains (campaigns finish or checkpoint);
               # a second signal hard-stops
  glade client --socket PATH (--oracle SPEC | --resume ID) [--seed FILE...]
               [-o OUT] [--max-queries N] [--no-memo] [--no-events] [--cache]
               [--connect-retries N] [--connect-backoff SECS]
               # SPEC: target:NAME (built-in) or cmd:CMDLINE (pooled worker)
               # --resume re-attaches a journaled campaign after a restart
";

/// Minimal argument cursor.
struct Args<'a> {
    argv: &'a [String],
    i: usize,
}

impl<'a> Args<'a> {
    fn new(argv: &'a [String]) -> Self {
        Args { argv, i: 0 }
    }

    fn next(&mut self) -> Option<&'a str> {
        let v = self.argv.get(self.i).map(String::as_str);
        if v.is_some() {
            self.i += 1;
        }
        v
    }

    fn value(&mut self, flag: &str) -> Result<&'a str, String> {
        self.next().ok_or_else(|| format!("{flag} needs a value"))
    }
}

fn read_file(path: &str) -> Result<Vec<u8>, String> {
    std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn load_grammar(path: &str) -> Result<Grammar, String> {
    let text = String::from_utf8(read_file(path)?).map_err(|_| format!("{path} is not UTF-8"))?;
    grammar_from_text(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_synth(argv: &[String]) -> Result<(), String> {
    let mut args = Args::new(argv);
    let mut seeds: Vec<Vec<u8>> = Vec::new();
    let mut cmdline: Option<String> = None;
    let mut target_name: Option<String> = None;
    let mut out: Option<String> = None;
    let mut cache_path: Option<String> = None;
    let mut cache_format: Option<CacheFormat> = None;
    let mut input_mode = InputMode::Stdin;
    let mut pool: Option<usize> = None;
    let mut frame_batch: Option<usize> = None;
    let mut wire_v1 = false;
    let mut max_respawns: Option<u32> = None;
    let mut events = false;
    let mut config = GladeConfig::default();

    while let Some(flag) = args.next() {
        match flag {
            "--seed" => seeds.push(read_file(args.value("--seed")?)?),
            "--cmd" => cmdline = Some(args.value("--cmd")?.to_owned()),
            "--target" => target_name = Some(args.value("--target")?.to_owned()),
            "-o" | "--out" => out = Some(args.value("-o")?.to_owned()),
            "--cache" => cache_path = Some(args.value("--cache")?.to_owned()),
            "--cache-format" => {
                cache_format = Some(parse_cache_format("--cache-format", &mut args)?)
            }
            "--stdin" => input_mode = InputMode::Stdin,
            "--tempfile" => input_mode = InputMode::TempFile,
            "--pool" => {
                let n: usize = args
                    .value("--pool")?
                    .parse()
                    .map_err(|_| "--pool needs a worker count".to_owned())?;
                if n == 0 {
                    return Err("--pool needs at least one worker".into());
                }
                pool = Some(n);
            }
            "--frame-batch" => {
                let n: usize = args
                    .value("--frame-batch")?
                    .parse()
                    .map_err(|_| "--frame-batch needs a query count".to_owned())?;
                if !(1..=glade_repro::core::wire::MAX_FRAME_QUERIES).contains(&n) {
                    return Err(format!(
                        "--frame-batch must be in 1..={}",
                        glade_repro::core::wire::MAX_FRAME_QUERIES
                    ));
                }
                frame_batch = Some(n);
            }
            "--wire-v1" => wire_v1 = true,
            "--oracle-timeout" => {
                let secs: f64 = args
                    .value("--oracle-timeout")?
                    .parse()
                    .map_err(|_| "--oracle-timeout needs seconds".to_owned())?;
                if !(secs > 0.0 && secs.is_finite()) {
                    return Err("--oracle-timeout needs a positive number of seconds".into());
                }
                config.oracle_timeout = Some(std::time::Duration::from_secs_f64(secs));
            }
            "--max-respawns" => {
                let n: u32 = args
                    .value("--max-respawns")?
                    .parse()
                    .map_err(|_| "--max-respawns needs a count".to_owned())?;
                if n == 0 {
                    return Err("--max-respawns needs at least one attempt".into());
                }
                max_respawns = Some(n);
            }
            "--max-queries" => {
                config.max_queries = Some(
                    args.value("--max-queries")?
                        .parse()
                        .map_err(|_| "--max-queries needs an integer".to_owned())?,
                )
            }
            "--no-chargen" => config.character_generalization = false,
            "--no-phase2" => config.phase2 = false,
            "--no-memo" => config.memoize_byte_classes = false,
            "--events" => events = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if seeds.is_empty() {
        return Err("at least one --seed FILE is required".into());
    }
    if pool.is_none() && (frame_batch.is_some() || wire_v1) {
        return Err("--frame-batch and --wire-v1 tune pooled oracles; add --pool N".into());
    }
    if pool.is_none() && max_respawns.is_some() {
        return Err("--max-respawns tunes pooled oracles; add --pool N".into());
    }
    if cache_path.is_none() && cache_format.is_some() {
        return Err("--cache-format picks the snapshot format; add --cache FILE".into());
    }

    // Build the oracle plus its identity fingerprint (used to tag the
    // persisted cache snapshot and refuse mismatched warm starts).
    let (oracle, fingerprint): (Box<dyn Oracle>, String) = match (cmdline, target_name) {
        (Some(cmd), None) => {
            let mut parts = cmd.split_whitespace();
            let prog = parts.next().ok_or("--cmd is empty")?;
            let cmd_args: Vec<&str> = parts.collect();
            match pool {
                Some(n) => {
                    // Pooled mode: the command must speak the worker
                    // protocol (wrap predicates with serve_oracle_worker /
                    // glade-oracle-worker). Input always travels over the
                    // protocol's stdin frames.
                    if input_mode == InputMode::TempFile {
                        return Err("--pool uses the worker protocol; drop --tempfile".into());
                    }
                    let mut o = PooledProcessOracle::new(prog).pool_size(n);
                    for a in &cmd_args {
                        o = o.arg(*a);
                    }
                    if let Some(fb) = frame_batch {
                        o = o.frame_batch(fb);
                    }
                    if wire_v1 {
                        o = o.max_wire_version(1);
                    }
                    if let Some(k) = max_respawns {
                        o = o.max_respawns(k);
                    }
                    let fp = o.fingerprint();
                    (Box::new(o), fp)
                }
                None => {
                    let mut o = ProcessOracle::new(prog).input_mode(input_mode);
                    for a in &cmd_args {
                        o = o.arg(*a);
                    }
                    let fp = o.fingerprint();
                    (Box::new(o), fp)
                }
            }
        }
        (None, Some(name)) => {
            if pool.is_some() {
                return Err("--pool applies to --cmd oracles (targets run in-process)".into());
            }
            // Same namespace as `glade worker` and serve's `target:` specs:
            // instrumented programs first, then the `-lang` languages.
            let oracle = subject_oracle(&name)
                .ok_or_else(|| format!("unknown target `{name}` (see `glade targets`)"))?;
            (oracle, format!("target:{name}"))
        }
        (Some(_), Some(_)) => return Err("--cmd and --target are mutually exclusive".into()),
        (None, None) => return Err("one of --cmd or --target is required".into()),
    };
    let oracle = CachingOracle::new(oracle);

    let start = std::time::Instant::now();
    let mut builder = GladeBuilder::from_config(config).oracle_fingerprint(fingerprint);
    if events {
        builder = builder.observer(StderrEvents);
    }
    let mut session = builder.session(&oracle);
    if let Some(path) = &cache_path {
        if std::path::Path::new(path).exists() {
            let loaded = session.load_cache(path).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("warm start: loaded {loaded} cached oracle verdicts from {path}");
        }
    }
    let result = session.add_seeds(&seeds).map_err(|e| e.to_string())?;
    eprintln!(
        "synthesized {} nonterminals / {} productions with {} oracle queries \
         ({} new this run) in {:?}",
        result.grammar.num_nonterminals(),
        result.grammar.num_productions(),
        result.stats.unique_queries,
        result.stats.new_unique_queries,
        start.elapsed()
    );
    if result.stats.probes_elided > 0 || result.stats.memo_hits > 0 {
        eprintln!(
            "query reduction: {} probe(s) elided, {} byte-class memo hit(s) \
             (disable with --no-memo)",
            result.stats.probes_elided, result.stats.memo_hits
        );
    }
    if result.stats.budget_exhausted {
        eprintln!("warning: query budget exhausted; the grammar is under-generalized");
    }
    if result.stats.oracle_failures > 0 {
        eprintln!(
            "warning: {} oracle execution failure(s) — the affected checks answered \
             `false`, so the grammar may be under-generalized",
            result.stats.oracle_failures
        );
    }
    if result.stats.timed_out_queries > 0 {
        eprintln!(
            "warning: {} quer{} abandoned to the --oracle-timeout deadline \
             (hung workers were killed and the queries retried or degraded)",
            result.stats.timed_out_queries,
            if result.stats.timed_out_queries == 1 { "y" } else { "ies" }
        );
    }
    if result.stats.tripped_workers > 0 {
        eprintln!(
            "warning: {} worker-slot circuit breaker trip(s) — worker spawns kept \
             failing; the pool ran below --pool capacity for a cool-down",
            result.stats.tripped_workers
        );
    }
    if let Some(path) = &cache_path {
        // Without an explicit --cache-format, a re-save keeps the format
        // the snapshot already has on disk — loads sniff either format,
        // so a warm run must not silently flip a binary cache to text.
        let fmt = cache_format.unwrap_or_else(|| sniff_cache_format(path));
        session.save_cache_as(path, fmt).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("query cache saved to {path}");
    }

    let text = grammar_to_text(&result.grammar);
    match out {
        Some(path) => {
            std::fs::write(&path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("grammar written to {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

/// The format an existing cache snapshot has on disk; [`CacheFormat::Text`]
/// for a missing or unreadable file (a fresh cache defaults to text).
fn sniff_cache_format(path: &str) -> CacheFormat {
    let mut magic = [0u8; 32];
    let n = std::fs::File::open(path).and_then(|mut f| f.read(&mut magic)).unwrap_or(0);
    if is_binary_snapshot(&magic[..n]) {
        CacheFormat::Binary
    } else {
        CacheFormat::Text
    }
}

/// Parses a `text`/`binary` cache-format flag value.
fn parse_cache_format(flag: &str, args: &mut Args<'_>) -> Result<CacheFormat, String> {
    let v = args.value(flag)?;
    CacheFormat::parse(v).ok_or_else(|| format!("{flag} must be `text` or `binary`, not `{v}`"))
}

/// `glade cache inspect|convert` — offline snapshot tooling. Both
/// subcommands sniff the source format from the file itself, exactly like
/// warm-start loading does.
fn cmd_cache(argv: &[String]) -> Result<(), String> {
    match argv.first().map(String::as_str) {
        Some("inspect") => match &argv[1..] {
            [path] => cache_inspect(path),
            _ => Err("usage: glade cache inspect FILE".into()),
        },
        Some("convert") => cache_convert(&argv[1..]),
        _ => Err("cache subcommands: inspect FILE | convert SRC DST [--format text|binary]".into()),
    }
}

/// Prints a snapshot's format, entry counts, fingerprint, and size. A
/// binary snapshot is inspected from its header alone (no full load), so
/// this stays fast on multi-gigabyte caches.
fn cache_inspect(path: &str) -> Result<(), String> {
    let mut file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut magic = [0u8; 32];
    let mut got = 0;
    while got < magic.len() {
        match file.read(&mut magic[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) => return Err(format!("cannot read {path}: {e}")),
        }
    }
    drop(file);
    if is_binary_snapshot(&magic[..got]) {
        let snapshot = BinaryCacheFile::open(path).map_err(|e| format!("{path}: {e}"))?;
        println!("format:       binary (glade-cachebin v1)");
        println!("entries:      {}", snapshot.len());
        println!("memo entries: {}", snapshot.memo_len());
        println!("oracle:       {}", snapshot.fingerprint().unwrap_or("(untagged)"));
        println!("file size:    {} bytes", snapshot.file_len());
    } else {
        let bytes = read_file(path)?;
        let header = bytes.split(|&b| b == b'\n').next().unwrap_or(&[]);
        let snapshot = snapshot_from_reader(&bytes[..]).map_err(|e| format!("{path}: {e}"))?;
        println!("format:       text ({})", String::from_utf8_lossy(header).trim_end());
        println!("entries:      {}", snapshot.entries.len());
        println!("memo entries: {}", snapshot.memo.len());
        println!(
            "oracle:       {}",
            snapshot.oracle_fingerprint.as_deref().unwrap_or("(untagged)")
        );
        println!("file size:    {} bytes", bytes.len());
    }
    Ok(())
}

/// Re-encodes a snapshot, preserving fingerprint and memo entries. With no
/// `--format`, converts to the opposite of the source format. The output
/// is written to a temp file and renamed into place, so a crash mid-write
/// never leaves a torn destination.
fn cache_convert(argv: &[String]) -> Result<(), String> {
    let mut args = Args::new(argv);
    let mut positional: Vec<&str> = Vec::new();
    let mut format: Option<CacheFormat> = None;
    while let Some(flag) = args.next() {
        match flag {
            "--format" => format = Some(parse_cache_format("--format", &mut args)?),
            other if !other.starts_with('-') => positional.push(other),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let [src, dst] = positional[..] else {
        return Err("usage: glade cache convert SRC DST [--format text|binary]".into());
    };
    let bytes = read_file(src)?;
    let src_binary = is_binary_snapshot(&bytes);
    let snapshot =
        if src_binary { snapshot_from_binary(&bytes) } else { snapshot_from_reader(&bytes[..]) }
            .map_err(|e| format!("{src}: {e}"))?;
    let target = format.unwrap_or(if src_binary { CacheFormat::Text } else { CacheFormat::Binary });
    let fp = snapshot.oracle_fingerprint.as_deref();
    let entries = snapshot.entries.to_vec();
    let out = match target {
        CacheFormat::Binary => snapshot_to_binary(&entries, &snapshot.memo, fp),
        CacheFormat::Text => snapshot_to_text_with_memo(&entries, &snapshot.memo, fp).into_bytes(),
    };
    let tmp = format!("{dst}.tmp");
    std::fs::write(&tmp, &out).map_err(|e| format!("cannot write {tmp}: {e}"))?;
    std::fs::rename(&tmp, dst).map_err(|e| format!("cannot move {tmp} to {dst}: {e}"))?;
    eprintln!(
        "converted {src} ({}) to {dst} ({target}): {} entries, {} memo entries, {} bytes",
        if src_binary { "binary" } else { "text" },
        snapshot.entries.len(),
        snapshot.memo.len(),
        out.len()
    );
    Ok(())
}

/// `glade worker NAME [--wire-v1]` — serve a built-in instrumented target
/// or Section 8.2 language over the pooled-oracle wire protocol, so
/// `glade synth --cmd 'glade worker NAME' --pool N` (and the test suites)
/// need no separate harness binary. Targets resolve first; languages are
/// suffixed `-lang` (except `toy-xml`), mirroring `glade-oracle-worker`.
fn cmd_worker(argv: &[String]) -> ExitCode {
    let (name, wire_v1) = match argv {
        [name] => (name.as_str(), false),
        [name, flag] if flag == "--wire-v1" => (name.as_str(), true),
        _ => {
            eprintln!("usage: glade worker NAME [--wire-v1]");
            return ExitCode::FAILURE;
        }
    };
    let oracle: Box<dyn Oracle> = match subject_oracle(name) {
        Some(oracle) => oracle,
        None => {
            eprintln!("glade worker: unknown subject `{name}` (see `glade targets`)");
            return ExitCode::FAILURE;
        }
    };
    let served = if wire_v1 {
        serve_oracle_worker_v1(|input| oracle.accepts(input))
    } else {
        serve_oracle_worker(|input| oracle.accepts(input))
    };
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("glade worker: protocol error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Resolves a built-in subject name to an in-process oracle: instrumented
/// targets first, then the Section 8.2 languages suffixed `-lang` (except
/// `toy-xml`). Shared by `glade worker` and the `glade serve` oracle
/// factory so `target:` specs and worker names agree.
fn subject_oracle(name: &str) -> Option<Box<dyn Oracle>> {
    if let Some(target) = target_by_name(name) {
        // Leak is fine: worker processes and serve daemons hold their
        // oracles for the whole process lifetime.
        let target: &'static dyn glade_repro::targets::Target = Box::leak(target);
        return Some(Box::new(TargetOracle::new(target)));
    }
    let mut languages = section82_languages();
    languages.push(toy_xml());
    let found = languages.into_iter().find(|l| {
        if l.name() == "toy-xml" {
            l.name() == name
        } else {
            name.strip_suffix("-lang").is_some_and(|stem| stem == l.name())
        }
    });
    found.map(|language| Box::new(language.oracle()) as Box<dyn Oracle>)
}

/// Prints every synthesis event as a wire line on stderr (`--events`).
struct StderrEvents;

impl SynthesisObserver for StderrEvents {
    fn on_event(&self, event: &SynthEvent) {
        eprintln!("{}", event.to_wire_line());
    }
}

/// The `glade serve` oracle factory: `target:NAME` resolves a built-in
/// subject in-process, `cmd:CMDLINE` spawns a pooled worker command.
#[cfg(any(target_os = "linux", target_os = "macos"))]
struct CliOracleFactory {
    pool: Option<usize>,
}

#[cfg(any(target_os = "linux", target_os = "macos"))]
impl OracleFactory for CliOracleFactory {
    fn create(&self, spec: &str) -> Result<(std::sync::Arc<dyn Oracle>, String), String> {
        if let Some(name) = spec.strip_prefix("target:") {
            let oracle = subject_oracle(name)
                .ok_or_else(|| format!("unknown subject `{name}` (see `glade targets`)"))?;
            Ok((std::sync::Arc::from(oracle), format!("target:{name}")))
        } else if let Some(cmd) = spec.strip_prefix("cmd:") {
            let mut parts = cmd.split_whitespace();
            let prog = parts.next().ok_or_else(|| "empty worker command".to_owned())?;
            let mut oracle = PooledProcessOracle::new(prog);
            for arg in parts {
                oracle = oracle.arg(arg);
            }
            if let Some(n) = self.pool {
                oracle = oracle.pool_size(n);
            }
            let fingerprint = oracle.fingerprint();
            Ok((std::sync::Arc::new(oracle), fingerprint))
        } else {
            Err("oracle spec must be target:NAME or cmd:CMDLINE".into())
        }
    }
}

#[cfg(any(target_os = "linux", target_os = "macos"))]
fn cmd_serve(argv: &[String]) -> Result<(), String> {
    let mut args = Args::new(argv);
    let mut socket: Option<String> = None;
    let mut pool: Option<usize> = None;
    let mut config = ServeConfig::default();
    while let Some(flag) = args.next() {
        match flag {
            "--socket" => socket = Some(args.value("--socket")?.to_owned()),
            "--pool" => {
                let n: usize = args
                    .value("--pool")?
                    .parse()
                    .map_err(|_| "--pool needs a worker count".to_owned())?;
                if n == 0 {
                    return Err("--pool needs at least one worker".into());
                }
                pool = Some(n);
            }
            "--oracle-timeout" => {
                let secs: f64 = args
                    .value("--oracle-timeout")?
                    .parse()
                    .map_err(|_| "--oracle-timeout needs seconds".to_owned())?;
                if !(secs > 0.0 && secs.is_finite()) {
                    return Err("--oracle-timeout needs a positive number of seconds".into());
                }
                config.oracle_timeout = Some(std::time::Duration::from_secs_f64(secs));
            }
            "--cache-dir" => {
                config.cache_dir = Some(args.value("--cache-dir")?.into());
            }
            "--cache-format" => {
                config.cache_format = Some(parse_cache_format("--cache-format", &mut args)?);
            }
            "--max-queries" => {
                config.default_max_queries = Some(
                    args.value("--max-queries")?
                        .parse()
                        .map_err(|_| "--max-queries needs an integer".to_owned())?,
                )
            }
            "--drain-timeout" => {
                let secs: f64 = args
                    .value("--drain-timeout")?
                    .parse()
                    .map_err(|_| "--drain-timeout needs seconds".to_owned())?;
                if !(secs >= 0.0 && secs.is_finite()) {
                    return Err("--drain-timeout needs a non-negative number of seconds".into());
                }
                config.drain_timeout = Some(std::time::Duration::from_secs_f64(secs));
            }
            "--max-event-buffer" => {
                config.max_event_buffer = Some(
                    args.value("--max-event-buffer")?
                        .parse()
                        .map_err(|_| "--max-event-buffer needs an integer".to_owned())?,
                )
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let socket = socket.ok_or("--socket PATH is required")?;
    if let Some(dir) = &config.cache_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    }
    let server = Server::new(std::sync::Arc::new(CliOracleFactory { pool }), config);
    let resumable = server.resumable_campaigns();
    let _ = std::fs::remove_file(&socket);
    let listener = std::os::unix::net::UnixListener::bind(&socket)
        .map_err(|e| format!("cannot bind {socket}: {e}"))?;
    eprintln!("glade serve: listening on {socket} (glade-serve v2)");
    if !resumable.is_empty() {
        let ids: Vec<String> = resumable.iter().map(u32::to_string).collect();
        eprintln!(
            "glade serve: {} resumable campaign(s) from the journal: {} \
             (re-attach with `glade client --resume ID`)",
            ids.len(),
            ids.join(" ")
        );
    }
    // First SIGTERM/SIGINT drains (campaigns finish or checkpoint, caches
    // save, socket unlinks); a second signal hard-stops fail-closed.
    let shutdown = CancelToken::new();
    let drain = CancelToken::new();
    install_drain_signals();
    {
        let shutdown = shutdown.clone();
        let drain = drain.clone();
        std::thread::Builder::new()
            .name("glade-serve-signals".into())
            .spawn(move || {
                let mut announced = false;
                loop {
                    let signals = drain_signal_count();
                    if signals >= 2 {
                        eprintln!("glade serve: second signal; stopping now");
                        shutdown.cancel();
                        return;
                    }
                    if signals >= 1 && !announced {
                        eprintln!(
                            "glade serve: drain requested; finishing campaigns \
                             (signal again to force-stop)"
                        );
                        drain.cancel();
                        announced = true;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
            })
            .map_err(|e| format!("cannot spawn signal watcher: {e}"))?;
    }
    server
        .run_with(listener, shutdown, drain, Some(std::path::Path::new(&socket)))
        .map_err(|e| format!("serve: {e}"))
}

#[cfg(any(target_os = "linux", target_os = "macos"))]
fn cmd_client(argv: &[String]) -> Result<(), String> {
    let mut args = Args::new(argv);
    let mut socket: Option<String> = None;
    let mut seeds: Vec<Vec<u8>> = Vec::new();
    let mut out: Option<String> = None;
    let mut request: Option<OpenRequest> = None;
    let mut resume: Option<u32> = None;
    let mut max_queries: Option<usize> = None;
    let mut memoize = true;
    let mut events = true;
    let mut cache = false;
    let mut connect_retries: u32 = 0;
    let mut connect_backoff = std::time::Duration::from_millis(500);
    while let Some(flag) = args.next() {
        match flag {
            "--socket" => socket = Some(args.value("--socket")?.to_owned()),
            "--oracle" => request = Some(OpenRequest::new(args.value("--oracle")?)),
            "--resume" => {
                resume = Some(
                    args.value("--resume")?
                        .parse()
                        .map_err(|_| "--resume needs a campaign id".to_owned())?,
                )
            }
            "--seed" => seeds.push(read_file(args.value("--seed")?)?),
            "-o" | "--out" => out = Some(args.value("-o")?.to_owned()),
            "--max-queries" => {
                max_queries = Some(
                    args.value("--max-queries")?
                        .parse()
                        .map_err(|_| "--max-queries needs an integer".to_owned())?,
                )
            }
            "--no-memo" => memoize = false,
            "--no-events" => events = false,
            "--cache" => cache = true,
            "--connect-retries" => {
                connect_retries = args
                    .value("--connect-retries")?
                    .parse()
                    .map_err(|_| "--connect-retries needs an integer".to_owned())?
            }
            "--connect-backoff" => {
                let secs: f64 = args
                    .value("--connect-backoff")?
                    .parse()
                    .map_err(|_| "--connect-backoff needs seconds".to_owned())?;
                if !(secs > 0.0 && secs.is_finite()) {
                    return Err("--connect-backoff needs a positive number of seconds".into());
                }
                connect_backoff = std::time::Duration::from_secs_f64(secs);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let socket = socket.ok_or("--socket PATH is required")?;
    if request.is_some() && resume.is_some() {
        return Err("--oracle and --resume are mutually exclusive".into());
    }
    if request.is_none() && resume.is_none() {
        return Err("--oracle SPEC or --resume ID is required".into());
    }
    if resume.is_none() && seeds.is_empty() {
        return Err("at least one --seed FILE is required".into());
    }

    let mut client = ServeClient::connect_with_retry(&socket, connect_retries, connect_backoff)
        .map_err(|e| format!("cannot connect to {socket}: {e}"))?;
    let on_event = |event: SynthEvent| eprintln!("{}", event.to_wire_line());
    let outcome = if let Some(id) = resume {
        let (campaign, fingerprint) = client.resume(id).map_err(|e| e.to_string())?;
        eprintln!("campaign {campaign} resumed against {fingerprint}");
        let replayed = client.resume_result(on_event).map_err(|e| e.to_string())?;
        if seeds.is_empty() {
            replayed
        } else {
            // New seeds after the replay extend the resumed campaign.
            client.synthesize(&seeds, on_event).map_err(|e| e.to_string())?
        }
    } else {
        let mut request = request.expect("checked above");
        request.max_queries = max_queries;
        request.memoize = memoize;
        request.events = events;
        request.cache = cache;
        let (campaign, fingerprint) = client.open(&request).map_err(|e| e.to_string())?;
        eprintln!("campaign {campaign} open against {fingerprint}");
        client.synthesize(&seeds, on_event).map_err(|e| e.to_string())?
    };
    eprintln!(
        "synthesized with {} oracle queries ({} new this run)",
        outcome.stats.unique_queries, outcome.stats.new_unique_queries
    );
    if outcome.stats.cancelled {
        eprintln!("warning: run was cancelled server-side; the grammar is degraded");
    }
    if outcome.stats.budget_exhausted {
        eprintln!("warning: query budget exhausted; the grammar is under-generalized");
    }
    client.close().map_err(|e| e.to_string())?;
    match out {
        Some(path) => {
            std::fs::write(&path, &outcome.grammar_text)
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("grammar written to {path}");
        }
        None => print!("{}", outcome.grammar_text),
    }
    Ok(())
}

fn cmd_sample(argv: &[String]) -> Result<(), String> {
    let mut args = Args::new(argv);
    let mut grammar_path = None;
    let mut count = 10usize;
    let mut max_depth = 32usize;
    let mut rng_seed = 0u64;
    while let Some(flag) = args.next() {
        match flag {
            "--grammar" => grammar_path = Some(args.value("--grammar")?.to_owned()),
            "--count" => count = args.value("--count")?.parse().map_err(|_| "bad --count")?,
            "--max-depth" => {
                max_depth = args.value("--max-depth")?.parse().map_err(|_| "bad --max-depth")?
            }
            "--seed-rng" => {
                rng_seed = args.value("--seed-rng")?.parse().map_err(|_| "bad --seed-rng")?
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let grammar = load_grammar(&grammar_path.ok_or("--grammar is required")?)?;
    let sampler = Sampler::with_max_depth(&grammar, max_depth);
    let mut rng = rand::rngs::StdRng::seed_from_u64(rng_seed);
    for _ in 0..count {
        match sampler.sample(&mut rng) {
            Some(s) => println!("{}", String::from_utf8_lossy(&s)),
            None => return Err("grammar is non-productive".into()),
        }
    }
    Ok(())
}

fn cmd_check(argv: &[String]) -> Result<(), String> {
    let mut args = Args::new(argv);
    let mut grammar_path = None;
    let mut input_path = None;
    while let Some(flag) = args.next() {
        match flag {
            "--grammar" => grammar_path = Some(args.value("--grammar")?.to_owned()),
            other if !other.starts_with('-') => input_path = Some(other.to_owned()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let grammar = load_grammar(&grammar_path.ok_or("--grammar is required")?)?;
    let input = match input_path {
        Some(p) => read_file(&p)?,
        None => {
            let mut buf = Vec::new();
            std::io::stdin().read_to_end(&mut buf).map_err(|e| format!("stdin: {e}"))?;
            buf
        }
    };
    if Earley::new(&grammar).accepts(&input) {
        println!("member");
        Ok(())
    } else {
        println!("NOT a member");
        Err("input rejected".into())
    }
}

fn cmd_fuzz(argv: &[String]) -> Result<(), String> {
    let mut args = Args::new(argv);
    let mut grammar_path = None;
    let mut seeds: Vec<Vec<u8>> = Vec::new();
    let mut count = 10usize;
    let mut rng_seed = 0u64;
    while let Some(flag) = args.next() {
        match flag {
            "--grammar" => grammar_path = Some(args.value("--grammar")?.to_owned()),
            "--seed" => seeds.push(read_file(args.value("--seed")?)?),
            "--count" => count = args.value("--count")?.parse().map_err(|_| "bad --count")?,
            "--seed-rng" => {
                rng_seed = args.value("--seed-rng")?.parse().map_err(|_| "bad --seed-rng")?
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let grammar = load_grammar(&grammar_path.ok_or("--grammar is required")?)?;
    let mut fuzzer = GrammarFuzzer::new(grammar, &seeds);
    if !seeds.is_empty() && fuzzer.parsed_seeds() == 0 {
        eprintln!("warning: no seed parses under the grammar; falling back to pure sampling");
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(rng_seed);
    for _ in 0..count {
        let input = fuzzer.next_input(&mut rng);
        println!("{}", String::from_utf8_lossy(&input));
    }
    Ok(())
}
