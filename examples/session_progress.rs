//! The session API end to end: live progress events, cooperative
//! cancellation, and query-cache persistence across runs.
//!
//! Three acts, all on the paper's running example (Figures 1–3):
//!
//! 1. **Observed run** — a `SynthesisObserver` prints phase boundaries,
//!    per-seed decisions, accepted merges, and a query-batch tally while
//!    the grammar is synthesized.
//! 2. **Cancelled run** — a `CancelToken` is tripped after a fixed number
//!    of oracle calls; the degraded grammar still contains the seed.
//! 3. **Warm restart** — the first run's query cache is saved to disk,
//!    loaded into a brand-new session, and the identical run is replayed:
//!    it reports **zero** new unique queries (no oracle calls at all).
//!
//! Run with: `cargo run --example session_progress`

use glade_repro::core::testing::xml_like;
use glade_repro::core::{CancelToken, FnOracle, GladeBuilder, SynthEvent, SynthesisObserver};
use glade_repro::grammar::Earley;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Prints structural events as they happen and tallies query batches.
struct ConsoleObserver {
    batches: AtomicUsize,
    cached: AtomicUsize,
    posed: AtomicUsize,
}

impl ConsoleObserver {
    fn new() -> Self {
        ConsoleObserver {
            batches: AtomicUsize::new(0),
            cached: AtomicUsize::new(0),
            posed: AtomicUsize::new(0),
        }
    }
}

impl SynthesisObserver for ConsoleObserver {
    fn on_event(&self, event: &SynthEvent) {
        match event {
            SynthEvent::PhaseStarted { phase } => println!("  [{phase}] started"),
            SynthEvent::PhaseFinished { phase, elapsed, unique_queries } => {
                println!("  [{phase}] finished in {elapsed:?} ({unique_queries} unique queries)")
            }
            SynthEvent::SeedGeneralized { seed_index, new_stars } => {
                println!("  seed #{seed_index}: generalized, {new_stars} repetition(s) found")
            }
            SynthEvent::SeedSkipped { seed_index } => {
                println!("  seed #{seed_index}: skipped (already covered)")
            }
            SynthEvent::MergeAccepted { left_star, right_star } => {
                println!("  merge accepted: star {left_star} ≡ star {right_star}")
            }
            SynthEvent::QueryBatch { cached, posed, .. } => {
                self.batches.fetch_add(1, Ordering::Relaxed);
                self.cached.fetch_add(*cached, Ordering::Relaxed);
                self.posed.fetch_add(*posed, Ordering::Relaxed);
            }
            SynthEvent::BudgetExhausted => println!("  !! budget exhausted"),
            SynthEvent::Cancelled => println!("  !! cancelled"),
            _ => {}
        }
    }
}

fn main() {
    let seed = vec![b"<a>hi</a>".to_vec()];

    // ---- Act 1: an observed run. ----
    println!("== Act 1: observed synthesis ==");
    let observer = std::sync::Arc::new(ConsoleObserver::new());
    let oracle = FnOracle::new(xml_like);
    let mut session = GladeBuilder::new().observer(observer.clone()).session(&oracle);
    let result = session.add_seeds(&seed).expect("seed is valid");
    println!(
        "  -> {} batches ({} checks answered from cache, {} posed to the oracle)",
        observer.batches.load(Ordering::Relaxed),
        observer.cached.load(Ordering::Relaxed),
        observer.posed.load(Ordering::Relaxed),
    );
    println!("  -> grammar has {} nonterminals\n", result.grammar.num_nonterminals());

    // ---- Act 2: a cancelled run. ----
    println!("== Act 2: cancellation after 150 oracle calls ==");
    let token = CancelToken::new();
    let trip = token.clone();
    let calls = AtomicUsize::new(0);
    let slow_oracle = FnOracle::new(move |i: &[u8]| {
        if calls.fetch_add(1, Ordering::Relaxed) + 1 == 150 {
            trip.cancel();
        }
        xml_like(i)
    });
    let mut cancelled_session =
        GladeBuilder::new().worker_threads(1).cancel_token(token).session(&slow_oracle);
    let degraded = cancelled_session.add_seeds(&seed).expect("seed is valid");
    assert!(degraded.stats.cancelled);
    assert!(Earley::new(&degraded.grammar).accepts(b"<a>hi</a>"));
    println!(
        "  -> run stopped after {} unique queries (full run: {}), seed still accepted\n",
        degraded.stats.unique_queries, result.stats.unique_queries,
    );

    // ---- Act 3: cache save / reload across two runs. ----
    println!("== Act 3: persistent query cache ==");
    let cache_path = std::env::temp_dir().join("glade-session-progress-cache.txt");
    session.save_cache(&cache_path).expect("cache saved");
    println!("  saved {} cached verdicts to {}", session.unique_queries(), cache_path.display());

    let oracle2 = FnOracle::new(xml_like);
    let mut warm = GladeBuilder::new().session(&oracle2);
    let loaded = warm.load_cache(&cache_path).expect("cache loads");
    let rerun = warm.add_seeds(&seed).expect("seed is valid");
    let _ = std::fs::remove_file(&cache_path);
    println!(
        "  reloaded {} verdicts; re-run posed {} new unique queries",
        loaded, rerun.stats.new_unique_queries,
    );
    assert_eq!(rerun.stats.new_unique_queries, 0, "warm run must be free");
    println!("  -> second run re-paid zero oracle calls");
}
