//! Quickstart: the paper's running example, end to end.
//!
//! Synthesizes a grammar for the XML-like language of Figure 1 from the
//! single seed `<a>hi</a>`, prints the intermediate regular expression and
//! the final grammar, and samples a few inputs from it — reproducing the
//! narrative of Figures 1–3 and Section 6.2.
//!
//! Run with: `cargo run --example quickstart`

use glade_repro::core::{FnOracle, Glade};
use glade_repro::grammar::{Earley, Sampler};
use rand::SeedableRng;

/// The target language L* = L(C_XML): A → (a..z | <a>A</a>)*.
fn xml_like(input: &[u8]) -> bool {
    fn parse(mut s: &[u8]) -> Option<&[u8]> {
        loop {
            if s.first().is_some_and(|b| b.is_ascii_lowercase()) {
                s = &s[1..];
            } else if s.starts_with(b"<a>") {
                s = parse(&s[3..])?.strip_prefix(b"</a>")?;
            } else {
                return Some(s);
            }
        }
    }
    parse(input).is_some_and(|r| r.is_empty())
}

fn main() {
    let seed = b"<a>hi</a>".to_vec();
    println!("Seed input E_in = {{ {:?} }}", String::from_utf8_lossy(&seed));
    println!("Oracle: the XML-like language of Figure 1\n");

    let oracle = FnOracle::new(xml_like);
    let result =
        Glade::new().synthesize(std::slice::from_ref(&seed), &oracle).expect("seed is valid");

    println!("Phase 1 + character generalization produced the regular expression:");
    println!("    {}\n", result.regex);

    println!("Phase 2 merged {} repetition pair(s); final grammar Ĉ:", {
        result.stats.merges_accepted
    });
    for line in result.grammar.to_string().lines() {
        println!("    {line}");
    }

    println!("\nStatistics:");
    println!("    oracle queries (unique):   {}", result.stats.unique_queries);
    println!("    repetition subexpressions: {}", result.stats.star_count);
    println!("    merge pairs tried:         {}", result.stats.merge_pairs_tried);
    println!("    chars generalized:         {}", result.stats.chars_generalized);
    println!("    total time:                {:?}", result.stats.total_time());

    // Sanity: recursion was learned (matching-parentheses structure).
    let parser = Earley::new(&result.grammar);
    assert!(parser.accepts(b"<a><a>nested</a></a>"));
    assert!(!parser.accepts(b"<a>unclosed"));

    println!("\nTen random samples from the synthesized grammar (all valid):");
    let sampler = Sampler::new(&result.grammar);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2017);
    for k in 0..10 {
        let s = sampler.sample(&mut rng).expect("productive grammar");
        assert!(xml_like(&s), "sampled input must be valid");
        println!("    {:2}: {:?}", k + 1, String::from_utf8_lossy(&s));
    }
}
