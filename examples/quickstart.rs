//! Quickstart: the paper's running example, end to end.
//!
//! Synthesizes a grammar for the XML-like language of Figure 1 from the
//! single seed `<a>hi</a>`, prints the intermediate regular expression and
//! the final grammar, and samples a few inputs from it — reproducing the
//! narrative of Figures 1–3 and Section 6.2.
//!
//! Run with: `cargo run --example quickstart`

use glade_repro::core::testing::xml_like;
use glade_repro::core::{FnOracle, GladeBuilder};
use glade_repro::grammar::{Earley, Sampler};
use rand::SeedableRng;

fn main() {
    let seed = b"<a>hi</a>".to_vec();
    println!("Seed input E_in = {{ {:?} }}", String::from_utf8_lossy(&seed));
    println!("Oracle: the XML-like language of Figure 1\n");

    // The target language L* = L(C_XML): A → (a..z | <a>A</a>)*.
    let oracle = FnOracle::new(xml_like);
    let mut session = GladeBuilder::new().session(&oracle);
    let result = session.add_seeds(std::slice::from_ref(&seed)).expect("seed is valid");

    println!("Phase 1 + character generalization produced the regular expression:");
    println!("    {}\n", result.regex);

    println!("Phase 2 merged {} repetition pair(s); final grammar Ĉ:", {
        result.stats.merges_accepted
    });
    for line in result.grammar.to_string().lines() {
        println!("    {line}");
    }

    println!("\nStatistics:");
    println!("    oracle queries (unique):   {}", result.stats.unique_queries);
    println!("    repetition subexpressions: {}", result.stats.star_count);
    println!("    merge pairs tried:         {}", result.stats.merge_pairs_tried);
    println!("    chars generalized:         {}", result.stats.chars_generalized);
    println!("    total time:                {:?}", result.stats.total_time());

    // Sanity: recursion was learned (matching-parentheses structure).
    let parser = Earley::new(&result.grammar);
    assert!(parser.accepts(b"<a><a>nested</a></a>"));
    assert!(!parser.accepts(b"<a>unclosed"));

    // The session stays open: a later seed extends the grammar without
    // re-deriving the first seed's tree (see examples/session_progress.rs
    // for observers, cancellation, and cache persistence).
    let extended = session.add_seeds(&[b"<a><a>x</a></a>".to_vec()]).expect("seed is valid");
    println!(
        "\nIncremental add_seeds: {} seeds total, {} new oracle queries this run",
        extended.stats.seeds_used + extended.stats.seeds_skipped,
        extended.stats.new_unique_queries
    );

    println!("\nTen random samples from the synthesized grammar (all valid):");
    let sampler = Sampler::new(&result.grammar);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2017);
    for k in 0..10 {
        let s = sampler.sample(&mut rng).expect("productive grammar");
        assert!(xml_like(&s), "sampled input must be valid");
        println!("    {:2}: {:?}", k + 1, String::from_utf8_lossy(&s));
    }
}
