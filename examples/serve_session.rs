//! The `glade serve` subsystem end to end, all in one process: a
//! multi-tenant synthesis server on a unix socket, two concurrent
//! campaigns with live event streams, a mid-run cancel, and a persistent
//! per-fingerprint query cache surviving a server restart.
//!
//! Four acts, on the paper's running example (Figures 1–3):
//!
//! 1. **Serve** — an in-process [`Server`] is spawned on a temp socket
//!    with an [`OracleFactory`] mapping `toy-xml` to the running-example
//!    oracle, and a cache directory for persistent campaign caches.
//! 2. **Two tenants** — two [`ServeClient`] campaigns run concurrently
//!    over the shared oracle (interleaved by the fair scheduler), each
//!    printing its live event stream; both grammars are byte-identical to
//!    solo local runs.
//! 3. **Cancel** — a third campaign is cancelled mid-run through a
//!    [`CancelHandle`]; the degraded result still arrives, flagged
//!    `cancelled`, with the seed preserved.
//! 4. **Warm restart** — the server is shut down and a new one started on
//!    the same cache directory; the repeated campaign pays **zero** new
//!    unique queries.
//!
//! Run with: `cargo run --example serve_session`
//! (unix only: the server multiplexes unix-domain sockets with `poll(2)`).

#[cfg(any(target_os = "linux", target_os = "macos"))]
fn main() -> std::io::Result<()> {
    use glade_repro::core::serve::{
        CancelHandle, OpenRequest, OracleFactory, ServeClient, ServeConfig, Server,
    };
    use glade_repro::core::testing::xml_like;
    use glade_repro::core::{FnOracle, GladeBuilder, Oracle, SynthEvent};
    use std::sync::Arc;

    let dir = std::env::temp_dir().join(format!("glade-serve-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir)?;
    let socket = dir.join("serve.sock");
    let cache_dir = dir.join("caches");
    std::fs::create_dir_all(&cache_dir)?;

    // Act 1: the server. The factory decides what oracle specs mean; here
    // one spec, the running example. Campaigns naming the same spec share
    // one oracle through the fair scheduler.
    let factory: Arc<dyn OracleFactory> =
        Arc::new(|spec: &str| -> Result<(Arc<dyn Oracle>, String), String> {
            match spec {
                "toy-xml" => Ok((Arc::new(FnOracle::new(xml_like)), "example:toy-xml".into())),
                // A deliberately slow variant so act 3's cancel reliably
                // lands while the run is still in flight.
                "slow-toy-xml" => Ok((
                    Arc::new(FnOracle::new(|input: &[u8]| {
                        std::thread::sleep(std::time::Duration::from_micros(500));
                        xml_like(input)
                    })),
                    "example:slow-toy-xml".into(),
                )),
                other => Err(format!("unknown spec {other:?}")),
            }
        });
    let config = ServeConfig { cache_dir: Some(cache_dir.clone()), ..ServeConfig::default() };
    let server = Server::new(Arc::clone(&factory), config.clone()).spawn(&socket)?;
    println!("server listening on {}", socket.display());

    // Act 2: two concurrent campaigns with live events, each checked
    // against its solo local baseline.
    let seed_sets: [&[u8]; 2] = [b"<a>hi</a>", b"<a><a>deep</a></a>"];
    let outcomes = std::thread::scope(|s| -> std::io::Result<Vec<(String, usize)>> {
        let handles: Vec<_> = seed_sets
            .iter()
            .enumerate()
            .map(|(tenant, seed)| {
                let socket = socket.clone();
                s.spawn(move || -> std::io::Result<(String, usize)> {
                    let mut client = ServeClient::connect(&socket)?;
                    let mut request = OpenRequest::new("toy-xml");
                    // Only tenant 0 persists its cache: both campaigns
                    // share one oracle fingerprint, so they would share
                    // one cache file — and act 4 replays tenant 0's run.
                    request.cache = tenant == 0;
                    let (id, fingerprint) = client.open(&request)?;
                    println!("tenant {tenant}: campaign #{id} against {fingerprint}");
                    let outcome = client.synthesize(&[seed.to_vec()], |event| {
                        if let SynthEvent::PhaseFinished { phase, unique_queries, .. } = event {
                            println!("tenant {tenant}:   [{phase}] done ({unique_queries} unique)");
                        }
                    })?;
                    client.close()?;
                    Ok((outcome.grammar_text, outcome.stats.unique_queries))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("tenant thread")).collect()
    })?;
    for (tenant, ((grammar, unique), seed)) in outcomes.iter().zip(&seed_sets).enumerate() {
        let oracle = FnOracle::new(xml_like);
        let solo =
            GladeBuilder::new().synthesize(&[seed.to_vec()], &oracle).expect("solo run succeeds");
        let identical = *grammar == glade_repro::grammar::grammar_to_text(&solo.grammar);
        println!(
            "tenant {tenant}: {unique} unique queries, byte-identical to solo run: {identical}"
        );
        assert!(identical, "the server must reproduce the local grammar exactly");
    }

    // Act 3: cancel a campaign mid-run from another thread. The cancel is
    // sticky and fail-closed: a degraded RESULT still arrives and the
    // grammar still contains the seed.
    let mut client = ServeClient::connect(&socket)?;
    client.open(&OpenRequest::new("slow-toy-xml"))?;
    let mut cancel: CancelHandle = client.cancel_handle()?;
    let canceller = std::thread::spawn(move || {
        // Let the run get going, then pull the plug.
        std::thread::sleep(std::time::Duration::from_millis(100));
        cancel.cancel()
    });
    let outcome = client.synthesize(&[b"<a>hi</a>".to_vec()], |_| {})?;
    canceller.join().expect("canceller thread")?;
    client.close()?;
    println!(
        "cancelled campaign: cancelled={} (grammar still has {} bytes)",
        outcome.stats.cancelled,
        outcome.grammar_text.len()
    );

    // Act 4: restart the server over the same cache directory. The first
    // tenant's campaign cache is found by oracle fingerprint, so the
    // repeated run pays zero new unique queries.
    server.shutdown()?;
    let server = Server::new(factory, config).spawn(&socket)?;
    let mut client = ServeClient::connect(&socket)?;
    let mut request = OpenRequest::new("toy-xml");
    request.cache = true;
    client.open(&request)?;
    let warm = client.synthesize(&[b"<a>hi</a>".to_vec()], |_| {})?;
    client.close()?;
    println!(
        "warm restart: {} new unique queries (cache reloaded from {})",
        warm.stats.new_unique_queries,
        cache_dir.display()
    );
    assert_eq!(warm.stats.new_unique_queries, 0, "the warm campaign must re-pay nothing");

    server.shutdown()?;
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

#[cfg(not(any(target_os = "linux", target_os = "macos")))]
fn main() {
    eprintln!("the glade serve subsystem is unix-only");
}
