//! Grammar-based fuzzing of a real-ish XML parser (the Section 8.3
//! workflow on one target).
//!
//! 1. Learn an input grammar for the instrumented XML parser from its three
//!    bundled seed inputs (blackbox: only accept/reject is observed).
//! 2. Fuzz the parser with (a) the GLADE grammar fuzzer, (b) the naive
//!    mutation fuzzer, and (c) the afl-like coverage-guided fuzzer.
//! 3. Report valid rates and valid incremental line coverage — the paper's
//!    Figure 7 metrics in miniature.
//!
//! Run with: `cargo run --release --example fuzz_xml_parser`

use glade_repro::core::GladeBuilder;
use glade_repro::fuzz::{
    learn_target_grammar, run_campaign, AflFuzzer, GrammarFuzzer, NaiveFuzzer,
};
use glade_repro::targets::programs::Xml;
use glade_repro::targets::Target;
use rand::SeedableRng;

fn main() {
    let xml = Xml;
    let seeds = xml.seeds();
    let samples: usize =
        std::env::var("GLADE_SAMPLES").ok().and_then(|v| v.parse().ok()).unwrap_or(3000);

    println!("Target: {} ({} instrumented lines)", xml.name(), xml.coverable_lines());
    println!("Seeds: {} inputs", seeds.len());

    // Step 1: synthesize the input grammar through the session-based
    // campaign helper. The query-cache snapshot (GLADE_CACHE to override)
    // makes repeated runs of this example warm-start: the second run pays
    // zero new oracle calls for synthesis.
    let cache_path = std::env::var("GLADE_CACHE")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir().join("glade-fuzz-xml-cache.txt"));
    let builder = GladeBuilder::new().max_queries(200_000);
    let start = std::time::Instant::now();
    let synthesis =
        learn_target_grammar(&xml, builder, Some(&cache_path)).expect("seeds are valid");
    println!(
        "\nSynthesized grammar: {} nonterminals, {} productions, {} oracle queries \
         ({} new this run), {:?}",
        synthesis.grammar.num_nonterminals(),
        synthesis.grammar.num_productions(),
        synthesis.stats.unique_queries,
        synthesis.stats.new_unique_queries,
        start.elapsed(),
    );
    println!("Query cache: {}", cache_path.display());

    // Step 2: run the three fuzzers.
    println!("\nFuzzing with {samples} samples per fuzzer:");
    println!("{:<8} {:>8} {:>12} {:>24}", "fuzzer", "valid", "valid-rate", "valid-incr-coverage");

    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut naive = NaiveFuzzer::new(seeds.clone());
    let naive_result = run_campaign(&xml, &mut naive, samples, &mut rng);

    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut afl = AflFuzzer::new(seeds.clone());
    let afl_result = run_campaign(&xml, &mut afl, samples, &mut rng);

    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut glade = GrammarFuzzer::new(synthesis.grammar.clone(), &seeds);
    let glade_result = run_campaign(&xml, &mut glade, samples, &mut rng);

    for r in [&naive_result, &afl_result, &glade_result] {
        println!(
            "{:<8} {:>8} {:>11.1}% {:>23.4}",
            r.fuzzer,
            r.valid,
            100.0 * r.valid_rate(),
            r.valid_incremental_coverage(),
        );
    }

    // Step 3: normalized view (the paper's headline metric).
    let base = naive_result.valid_incremental_coverage().max(f64::EPSILON);
    println!("\nValid normalized incremental coverage (naive = 1.0):");
    for r in [&naive_result, &afl_result, &glade_result] {
        println!("    {:<8} {:.2}x", r.fuzzer, r.valid_incremental_coverage() / base);
    }
}
