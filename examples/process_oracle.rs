//! Learning an input grammar for an external binary via process spawning —
//! and via the persistent worker-pool protocol.
//!
//! GLADE is blackbox: the oracle only needs to run the program and observe
//! acceptance (Section 2). Part one drives the system `grep` binary —
//! each membership query spawns `grep -E <candidate> /dev/null` and checks
//! the exit status (grep exits 2 on a malformed pattern), then synthesizes
//! a grammar for the accepted pattern syntax from a tiny seed.
//!
//! Part two shows the pooled alternative: this example re-executes itself
//! as a protocol worker (`glade_core::serve_oracle_worker`) and a
//! `PooledProcessOracle` poses every membership query of the paper's
//! running example over pipes to long-lived workers — a real-process
//! oracle without a process spawn per query (typically well over an order
//! of magnitude more queries/sec than spawning).
//!
//! Run with: `cargo run --release --example process_oracle`
//! (Requires a Unix-like system with `grep` on PATH for part one; each
//! part skips gracefully when its prerequisites are missing.)

use glade_repro::core::{
    testing::xml_like, CachingOracle, GladeBuilder, Oracle, PooledProcessOracle,
};
use glade_repro::grammar::Sampler;
use rand::SeedableRng;
use std::process::Command;

fn grep_available() -> bool {
    Command::new("grep").arg("--version").output().map(|o| o.status.success()).unwrap_or(false)
}

fn main() {
    // Self-exec worker mode for part two: serve the running example's
    // language over the pooled-oracle wire protocol until stdin closes.
    if std::env::args().nth(1).as_deref() == Some("--oracle-worker") {
        glade_repro::core::serve_oracle_worker(xml_like).expect("protocol I/O");
        return;
    }

    pooled_demo();

    if !grep_available() {
        eprintln!("`grep` is not available on this system; skipping the spawn demo.");
        return;
    }

    // grep -E PATTERN /dev/null: exit 1 = valid pattern, no match;
    // exit 2 = bad pattern. Wrap so "valid" means exit status 0 or 1.
    #[derive(Debug)]
    struct GrepPattern;
    impl Oracle for GrepPattern {
        fn accepts(&self, input: &[u8]) -> bool {
            // Reject patterns with NUL/newline (argv cannot carry them).
            if input.iter().any(|&b| b == 0 || b == b'\n') {
                return false;
            }
            let Ok(pattern) = std::str::from_utf8(input) else { return false };
            Command::new("grep")
                .arg("-E")
                .arg("--")
                .arg(pattern)
                .arg("/dev/null")
                .output()
                .map(|o| matches!(o.status.code(), Some(0) | Some(1)))
                .unwrap_or(false)
        }
    }

    let oracle = CachingOracle::new(GrepPattern);
    let seeds = vec![b"(ab|c)*x".to_vec()];

    println!("Learning grep -E pattern syntax by spawning grep per query…");
    // Each query costs a process spawn: keep the budget small, skip the
    // expensive character-generalization sweep, and let the batched query
    // engine overlap spawns across worker threads (grep runs are
    // independent).
    let builder =
        GladeBuilder::new().character_generalization(false).max_queries(400).worker_threads(4);
    let start = std::time::Instant::now();
    match builder.synthesize(&seeds, &oracle) {
        Ok(result) => {
            println!(
                "Done in {:?} after {} process spawns.",
                start.elapsed(),
                oracle.unique_queries()
            );
            println!("\nSynthesized grammar:");
            for line in result.grammar.to_string().lines() {
                println!("    {line}");
            }
            println!("\nSample patterns generated from it (all accepted by grep):");
            let sampler = Sampler::new(&result.grammar);
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            let mut shown = 0;
            while shown < 5 {
                let Some(s) = sampler.sample(&mut rng) else { break };
                if oracle.accepts(&s) {
                    println!("    {:?}", String::from_utf8_lossy(&s));
                    shown += 1;
                }
            }
        }
        Err(e) => println!("Synthesis failed: {e}"),
    }
}

/// Part two: the full running example (Figures 1–3) posed to a pool of
/// persistent worker processes instead of an in-process closure.
fn pooled_demo() {
    let Ok(me) = std::env::current_exe() else {
        eprintln!("cannot locate the example binary; skipping the pooled demo.");
        return;
    };
    println!("Learning the running example over a pool of 4 persistent workers…");
    let oracle = PooledProcessOracle::new(me).arg("--oracle-worker").pool_size(4);
    let start = std::time::Instant::now();
    match GladeBuilder::new()
        .worker_threads(4)
        .oracle_fingerprint(oracle.fingerprint())
        .synthesize(&[b"<a>hi</a>".to_vec()], &oracle)
    {
        Ok(result) => {
            let elapsed = start.elapsed();
            println!(
                "Done in {:?}: {} distinct real-process queries ({:.0} queries/sec), \
                 {} worker respawns, {} failures.",
                elapsed,
                result.stats.unique_queries,
                result.stats.unique_queries as f64 / elapsed.as_secs_f64().max(1e-9),
                oracle.respawn_count(),
                result.stats.oracle_failures,
            );
            println!("Synthesized grammar:");
            for line in result.grammar.to_string().lines() {
                println!("    {line}");
            }
            println!();
        }
        Err(e) => println!("Pooled synthesis failed: {e}\n"),
    }
}
