//! Learning an input grammar for an external binary via process spawning.
//!
//! GLADE is blackbox: the oracle only needs to run the program and observe
//! acceptance (Section 2). This example drives the system `grep` binary —
//! each membership query spawns `grep -E <candidate> /dev/null` and checks
//! the exit status (grep exits 2 on a malformed pattern), then synthesizes
//! a grammar for the accepted pattern syntax from two tiny seeds.
//!
//! Run with: `cargo run --release --example process_oracle`
//! (Requires a Unix-like system with `grep` on PATH; exits gracefully
//! otherwise.)

use glade_repro::core::{CachingOracle, GladeBuilder, Oracle};
use glade_repro::grammar::Sampler;
use rand::SeedableRng;
use std::process::Command;

fn grep_available() -> bool {
    Command::new("grep").arg("--version").output().map(|o| o.status.success()).unwrap_or(false)
}

fn main() {
    if !grep_available() {
        eprintln!("`grep` is not available on this system; skipping the demo.");
        return;
    }

    // grep -E PATTERN /dev/null: exit 1 = valid pattern, no match;
    // exit 2 = bad pattern. Wrap so "valid" means exit status 0 or 1.
    #[derive(Debug)]
    struct GrepPattern;
    impl Oracle for GrepPattern {
        fn accepts(&self, input: &[u8]) -> bool {
            // Reject patterns with NUL/newline (argv cannot carry them).
            if input.iter().any(|&b| b == 0 || b == b'\n') {
                return false;
            }
            let Ok(pattern) = std::str::from_utf8(input) else { return false };
            Command::new("grep")
                .arg("-E")
                .arg("--")
                .arg(pattern)
                .arg("/dev/null")
                .output()
                .map(|o| matches!(o.status.code(), Some(0) | Some(1)))
                .unwrap_or(false)
        }
    }

    let oracle = CachingOracle::new(GrepPattern);
    let seeds = vec![b"(ab|c)*x".to_vec()];

    println!("Learning grep -E pattern syntax by spawning grep per query…");
    // Each query costs a process spawn: keep the budget small, skip the
    // expensive character-generalization sweep, and let the batched query
    // engine overlap spawns across worker threads (grep runs are
    // independent).
    let builder =
        GladeBuilder::new().character_generalization(false).max_queries(400).worker_threads(4);
    let start = std::time::Instant::now();
    match builder.synthesize(&seeds, &oracle) {
        Ok(result) => {
            println!(
                "Done in {:?} after {} process spawns.",
                start.elapsed(),
                oracle.unique_queries()
            );
            println!("\nSynthesized grammar:");
            for line in result.grammar.to_string().lines() {
                println!("    {line}");
            }
            println!("\nSample patterns generated from it (all accepted by grep):");
            let sampler = Sampler::new(&result.grammar);
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            let mut shown = 0;
            while shown < 5 {
                let Some(s) = sampler.sample(&mut rng) else { break };
                if oracle.accepts(&s) {
                    println!("    {:?}", String::from_utf8_lossy(&s));
                    shown += 1;
                }
            }
        }
        Err(e) => println!("Synthesis failed: {e}"),
    }
}
