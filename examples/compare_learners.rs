//! Comparing GLADE to the classic language-inference baselines (a
//! miniature of the Section 8.2 experiment).
//!
//! Learns the paper's XML-like running-example language with each of the
//! four learners (L-Star, RPNI, GLADE-P1, GLADE) and prints
//! precision/recall/F1 and running times.
//!
//! Run with: `cargo run --release --example compare_learners`

use glade_repro::eval::{run_learner, EvalConfig, Learner};
use glade_repro::targets::languages::toy_xml;
use rand::SeedableRng;
use std::time::Duration;

fn main() {
    let language = toy_xml();
    let config = EvalConfig {
        num_seeds: 15,
        eval_samples: 400,
        time_limit: Duration::from_secs(20),
        equivalence_samples: 50,
        num_negatives: 30,
        max_queries: 150_000,
    };

    println!("Target language: {} —", language.name());
    for line in language.grammar().to_string().lines() {
        println!("    {line}");
    }
    println!(
        "\n{} seeds, {}-sample precision/recall, {:?} budget per learner\n",
        config.num_seeds, config.eval_samples, config.time_limit
    );
    println!(
        "{:<10} {:>10} {:>8} {:>8} {:>10} {:>9}",
        "learner", "precision", "recall", "F1", "time", "timeout"
    );

    for learner in Learner::all() {
        // Fresh RNG per learner so each sees the same seed sample.
        let mut rng = rand::rngs::StdRng::seed_from_u64(2017);
        let row = run_learner(&language, learner, &config, &mut rng);
        println!(
            "{:<10} {:>10.3} {:>8.3} {:>8.3} {:>9.2?} {:>9}",
            row.learner,
            row.quality.precision,
            row.quality.recall,
            row.f1(),
            row.time,
            if row.timed_out { "yes" } else { "no" },
        );
    }

    println!("\nExpected shape (paper Figure 4a): GLADE ≈ 1.0 F1, GLADE-P1 close behind,");
    println!("L-Star and RPNI far lower — they overgeneralize or undergeneralize without");
    println!("the checks GLADE constructs.");
}
